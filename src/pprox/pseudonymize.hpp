// PPROX-LAYER: vocab
//
// The shared decrypt-then-pseudonymize transform both enclave layers apply
// to their identifier field (paper §4.2). Domain-generic: the instantiating
// translation unit names what kind of cleartext transits through it (UA:
// UserDomain, IA: ItemDomain), and the decrypted block is wrapped the
// instant it exists, leaving only through the pseudonymization declassifier.
#pragma once

#include <string>
#include <string_view>

#include "common/encoding.hpp"
#include "common/result.hpp"
#include "common/taint.hpp"
#include "crypto/ctr.hpp"
#include "crypto/rsa.hpp"
#include "pprox/message.hpp"

namespace pprox {

/// RSA-decrypt+unpad a base64 identifier field and return its deterministic
/// pseudonym under `det` (base64).
template <typename Domain>
Result<std::string> pseudonymize_field(const crypto::RsaPrivateKey& sk,
                                       const crypto::DeterministicCipher& det,
                                       std::string_view base64_cipher) {
  const auto cipher = base64_decode(base64_cipher);
  // PPROX-CT-OK(branch): base64 framing of adversary-chosen wire input;
  // rejection is observable through the error response regardless.
  if (!cipher) return Error::parse("field is not valid base64");
  auto plain = crypto::rsa_decrypt_oaep(sk, *cipher);
  if (!plain.ok()) return plain.error();
  if (plain.value().size() != kIdBlockSize) {
    return Error::crypto("decrypted identifier block has wrong size");
  }
  const SensitiveBlock<Domain> block{std::move(plain.value())};
  // Deterministic pseudonym over the *padded block*: constant size, and the
  // LRS sees equal pseudonyms for equal identifiers.
  // PPROX-DECLASSIFY: det_enc under the layer's permanent key k; the output
  // is the pseudonym that the protocol is designed to expose.
  return base64_encode(det.encrypt(taint::declassify_for_pseudonymization(block)));
}

}  // namespace pprox
