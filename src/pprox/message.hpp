// PProx wire format (paper §4.3 + §5): fixed-size identifier blocks so every
// encrypted message between client, UA, IA and LRS has constant size;
// base64-encoded ciphertexts inside JSON payloads; response lists padded to
// a maximum length with pseudo-items that the user-side library discards.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace pprox {

/// Fixed plaintext block size for user/item identifiers before encryption.
/// Must fit one RSA-OAEP-SHA256 payload for the smallest supported layer key
/// (1024-bit => 62 bytes), so 48 with a 2-byte length prefix.
inline constexpr std::size_t kIdBlockSize = 48;

/// Maximum identifier length the block can carry.
inline constexpr std::size_t kMaxIdLength = kIdBlockSize - 2;

/// Recommendation lists are padded to exactly this many entries (paper: 20).
inline constexpr std::size_t kMaxRecommendations = 20;

/// Fixed plaintext size for the serialized recommendation list before its
/// encryption under k_u, so get responses are constant-size on the wire.
inline constexpr std::size_t kResponseBlockSize = 2048;

/// Prefix marking padding pseudo-items; discarded by the client library.
inline constexpr const char* kPadItemPrefix = "__pprox_pad_";

/// JSON field names used on the wire.
namespace fields {
inline constexpr const char* kUser = "user";
inline constexpr const char* kItem = "item";
inline constexpr const char* kTempKey = "k";
inline constexpr const char* kItems = "items";
inline constexpr const char* kPayload = "payload";
inline constexpr const char* kEncryptionMode = "enc";
}  // namespace fields

/// REST targets (identical to the LRS API — the proxy is transparent).
namespace paths {
inline constexpr const char* kEvents = "/engines/ur/events";
inline constexpr const char* kQueries = "/engines/ur/queries";
}  // namespace paths

/// Encodes an identifier into a fixed-size block: [2-byte length][id][zeros].
/// Fails when the identifier exceeds kMaxIdLength.
Result<Bytes> pad_identifier(std::string_view id);

/// Inverse of pad_identifier.
Result<std::string> unpad_identifier(ByteView block);

/// Pads a recommendation list to kMaxRecommendations with pseudo-items.
std::vector<std::string> pad_recommendations(std::vector<std::string> items);

/// Removes padding pseudo-items (client side).
std::vector<std::string> strip_pad_items(std::vector<std::string> items);

/// Serializes a recommendation list to a fixed-size plaintext block
/// (JSON array + space padding). Fails if the list does not fit.
Result<Bytes> encode_response_block(const std::vector<std::string>& items);

/// Parses a fixed-size response block back into the item list.
Result<std::vector<std::string>> decode_response_block(ByteView block);

}  // namespace pprox
