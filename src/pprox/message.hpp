// PPROX-LAYER: vocab
//
// PProx wire format (paper §4.3 + §5): fixed-size identifier blocks so every
// encrypted message between client, UA, IA and LRS has constant size;
// base64-encoded ciphertexts inside JSON payloads; response lists padded to
// a maximum length with pseudo-items that the user-side library discards.
//
// Identifier plaintext is domain-typed (common/taint.hpp): a cleartext user
// or item id is a `Sensitive<std::string, Domain>`, its padded block a
// `Sensitive<Bytes, Domain>`, and the typed helpers below keep the domain
// attached across padding/serialization. Only a `declassify_*` call can
// drop the wrapper.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/taint.hpp"

namespace pprox {

/// A cleartext user identifier: client-side and UA-enclave eyes only.
using UserId = taint::Sensitive<std::string, taint::UserDomain>;

/// A cleartext item identifier (or IA-destined payload).
using ItemId = taint::Sensitive<std::string, taint::ItemDomain>;

/// A pseudonymized identifier as the LRS stores it (base64 of
/// det_enc(padded id, k_layer)); releasable by construction.
using PseudonymizedId = taint::Sensitive<std::string, taint::PseudonymDomain>;

/// A padded fixed-size identifier block whose plaintext is still sensitive.
template <typename Domain>
using SensitiveBlock = taint::Sensitive<Bytes, Domain>;

/// Fixed plaintext block size for user/item identifiers before encryption.
/// Must fit one RSA-OAEP-SHA256 payload for the smallest supported layer key
/// (1024-bit => 62 bytes), so 48 with a 2-byte length prefix.
inline constexpr std::size_t kIdBlockSize = 48;

/// Maximum identifier length the block can carry.
inline constexpr std::size_t kMaxIdLength = kIdBlockSize - 2;

/// Recommendation lists are padded to exactly this many entries (paper: 20).
inline constexpr std::size_t kMaxRecommendations = 20;

/// Fixed plaintext size for the serialized recommendation list before its
/// encryption under k_u, so get responses are constant-size on the wire.
inline constexpr std::size_t kResponseBlockSize = 2048;

/// Prefix marking padding pseudo-items; discarded by the client library.
inline constexpr const char* kPadItemPrefix = "__pprox_pad_";

/// JSON field names used on the wire.
namespace fields {
inline constexpr const char* kUser = "user";
inline constexpr const char* kItem = "item";
inline constexpr const char* kTempKey = "k";
inline constexpr const char* kItems = "items";
inline constexpr const char* kPayload = "payload";
inline constexpr const char* kEncryptionMode = "enc";
}  // namespace fields

/// REST targets (identical to the LRS API — the proxy is transparent).
namespace paths {
inline constexpr const char* kEvents = "/engines/ur/events";
inline constexpr const char* kQueries = "/engines/ur/queries";
}  // namespace paths

/// Encodes an identifier into a fixed-size block: [2-byte length][id][zeros].
/// Fails when the identifier exceeds kMaxIdLength.
Result<Bytes> pad_identifier(std::string_view id);

/// Inverse of pad_identifier.
Result<std::string> unpad_identifier(ByteView block);

/// The index-th padding pseudo-item name (a precomputed protocol constant;
/// index is taken modulo kMaxRecommendations).
const std::string& pad_item_name(std::size_t index);

/// Pads a recommendation list to kMaxRecommendations with pseudo-items.
std::vector<std::string> pad_recommendations(std::vector<std::string> items);

/// Removes padding pseudo-items (client side).
std::vector<std::string> strip_pad_items(std::vector<std::string> items);

/// Serializes a recommendation list to a fixed-size plaintext block
/// (JSON array + space padding). Fails if the list does not fit.
Result<Bytes> encode_response_block(const std::vector<std::string>& items);

/// Parses a fixed-size response block back into the item list.
Result<std::vector<std::string>> decode_response_block(ByteView block);

// ---------------------------------------------------------------------------
// Domain-typed wrappers: same transformations, but the identifier keeps its
// taint domain. These are domain-preserving (taint::try_map), so they need
// no declassification; extracting the raw value afterwards still does.
// ---------------------------------------------------------------------------

/// pad_identifier for a domain-typed id; the padded block stays sensitive.
template <typename Domain>
Result<SensitiveBlock<Domain>> pad_sensitive_id(
    const taint::Sensitive<std::string, Domain>& id) {
  return taint::try_map(
      id, [](const std::string& raw) { return pad_identifier(raw); });
}

/// unpad_identifier for a domain-typed block; the id stays sensitive.
template <typename Domain>
Result<taint::Sensitive<std::string, Domain>> unpad_sensitive_id(
    const SensitiveBlock<Domain>& block) {
  return taint::try_map(
      block, [](const Bytes& raw) { return unpad_identifier(raw); });
}

/// pad_recommendations over domain-typed items. The pseudo-items are public
/// protocol constants, so wrapping them raises no new information.
template <typename Domain>
std::vector<taint::Sensitive<std::string, Domain>> pad_sensitive_recommendations(
    std::vector<taint::Sensitive<std::string, Domain>> items) {
  if (items.size() > kMaxRecommendations) items.resize(kMaxRecommendations);
  std::size_t pad_index = 0;
  while (items.size() < kMaxRecommendations) {
    items.emplace_back(pad_item_name(pad_index++));
  }
  return items;
}

/// encode_response_block over domain-typed items: the serialized list block
/// is exactly as sensitive as the items it carries.
template <typename Domain>
Result<SensitiveBlock<Domain>> encode_sensitive_response_block(
    const std::vector<taint::Sensitive<std::string, Domain>>& items) {
  return taint::try_map_all(items, [](const std::vector<std::string>& raw) {
    return encode_response_block(raw);
  });
}

/// decode_response_block that labels every decoded item with `Domain` —
/// used where freshly decrypted plaintext re-enters the typed world.
template <typename Domain>
Result<std::vector<taint::Sensitive<std::string, Domain>>>
decode_sensitive_response_block(ByteView block) {
  auto items = decode_response_block(block);
  if (!items.ok()) return items.error();
  std::vector<taint::Sensitive<std::string, Domain>> out;
  out.reserve(items.value().size());
  for (std::string& item : items.value()) {
    out.emplace_back(std::move(item));
  }
  return out;
}

}  // namespace pprox
