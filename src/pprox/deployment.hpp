// Full-system assembly: generates application keys, boots UA/IA enclaves on
// registered platforms, attests and provisions them, stands up proxy
// instances behind round-robin balancers (the kube-proxy stand-in), and
// wires everything to an LRS sink. Used by examples, integration tests, and
// the attack harness.
#pragma once

#include <memory>
#include <vector>

#include "enclave/attestation.hpp"
#include "net/channel.hpp"
#include "pprox/client.hpp"
#include "lrs/harness.hpp"
#include "pprox/proxy.hpp"

namespace pprox {

struct DeploymentConfig {
  int ua_instances = 1;
  int ia_instances = 1;
  int shuffle_size = 0;  ///< <=1 disables shuffling
  std::chrono::milliseconds shuffle_timeout{500};
  bool pseudonymize_items = true;
  bool authenticated_responses = false;  ///< AES-GCM response protection
  std::size_t rsa_bits = 1024;        ///< layer key size (tests: 1024)
  std::size_t worker_threads = 2;
};

/// A running in-process PProx deployment in front of an LRS sink.
/// Owns enclaves, proxies and balancers; the LRS sink is borrowed.
class Deployment {
 public:
  /// `lrs` must outlive the deployment.
  Deployment(const DeploymentConfig& config, net::RequestSink& lrs,
             RandomSource& rng);

  /// Creates a user-side library bound to this deployment's entry point.
  ClientLibrary make_client(RandomSource* rng = nullptr) const;

  const ClientParams& client_params() const { return client_params_; }
  const ApplicationKeys& application_keys() const { return keys_; }
  const enclave::AttestationService& authority() const { return authority_; }

  std::size_t ua_count() const { return ua_proxies_.size(); }
  std::size_t ia_count() const { return ia_proxies_.size(); }

  /// Instance access for tests and the attack harness.
  ProxyServer& ua_proxy(std::size_t i) { return *ua_proxies_.at(i); }
  ProxyServer& ia_proxy(std::size_t i) { return *ia_proxies_.at(i); }
  enclave::Enclave& ua_enclave(std::size_t i) { return *ua_enclaves_.at(i); }
  enclave::Enclave& ia_enclave(std::size_t i) { return *ia_enclaves_.at(i); }

  /// Entry-point channel (what the user-side library talks to).
  std::shared_ptr<net::HttpChannel> entry_channel() const { return entry_; }

  /// Full breach response (paper §3 footnote 1): generates fresh layer
  /// secrets, re-encrypts the LRS database, discards every enclave (their
  /// provisioned secrets are assumed leaked) and boots, attests and
  /// provisions fresh ones. Existing ClientLibrary instances become stale:
  /// call make_client() again for the new public parameters. The LRS must
  /// be retrained afterwards (pseudonym spaces changed).
  Status rotate(lrs::HarnessServer& lrs, RandomSource& rng);

  /// Number of completed rotations (key epochs) for this deployment.
  std::uint64_t key_epoch() const { return key_epoch_; }

 private:
  /// Boots, attests, provisions and wires all proxies from keys_.
  void build_layers(RandomSource& rng);

  DeploymentConfig config_;
  enclave::AttestationService authority_;
  ApplicationKeys keys_;
  ClientParams client_params_;
  std::uint64_t key_epoch_ = 0;

  std::vector<std::unique_ptr<enclave::Enclave>> ua_enclaves_;
  std::vector<std::unique_ptr<enclave::Enclave>> ia_enclaves_;
  std::shared_ptr<net::HttpChannel> lrs_channel_;
  // shared_ptr (not unique_ptr) so channels can hold weak references: after
  // rotate() discards a proxy, a stale client's InProcChannel fails its
  // weak_ptr lock and reports 503 instead of touching freed memory.
  std::vector<std::shared_ptr<ProxyServer>> ia_proxies_;
  std::shared_ptr<net::HttpChannel> ia_balancer_;
  std::vector<std::shared_ptr<ProxyServer>> ua_proxies_;
  std::shared_ptr<net::HttpChannel> entry_;
};

/// Elastic-scaling advisor (paper §5 "Horizontal scaling"): the number of
/// instance pairs needed for `target_rps`, given the measured per-pair
/// capacity, with a utilization headroom. Also used to scale *down* so
/// shuffle buffers keep filling before the timer (latency floor).
int recommend_instance_pairs(double target_rps, double per_pair_capacity_rps,
                             double headroom = 0.8);

}  // namespace pprox
