// Breach response (paper §3, footnote 1). Side-channel attacks against SGX
// are detectable — they run for tens of minutes and degrade the victim
// enclave's performance (Varys, Déjà Vu, Cloak). Once a breach is suspected,
// the secrets provisioned to the broken layer must be considered public and
// the application rotates:
//   1. generate fresh layer secrets,
//   2. download the LRS state, re-encrypt the pseudonyms locally, re-upload
//      (one of the footnote's listed options),
//   3. provision fresh enclaves and ship new public parameters to clients.
#pragma once

#include <deque>
#include <map>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "lrs/harness.hpp"
#include "pprox/keys.hpp"

namespace pprox {

/// Performance-based attack detector (Varys/Déjà-Vu stand-in): tracks a
/// baseline of per-ecall latencies per enclave and raises an alarm when the
/// recent average rises by more than `degradation_factor` over the baseline
/// — the signature of cache-priming/page-fault side channels.
class BreachMonitor {
 public:
  explicit BreachMonitor(double degradation_factor = 2.0,
                         std::size_t baseline_samples = 32,
                         std::size_t window = 16)
      : factor_(degradation_factor),
        baseline_samples_(baseline_samples),
        window_(window) {}

  /// Feeds one observed ecall latency for the enclave identified by `id`.
  /// Thread-safe: proxy workers report latencies concurrently.
  void record(const std::string& id, double ecall_latency_ms)
      PPROX_EXCLUDES(mutex_);

  /// True when the recent window is degraded vs the established baseline.
  bool attack_suspected(const std::string& id) const PPROX_EXCLUDES(mutex_);

  /// Baseline mean (0 until established). Exposed for tests.
  double baseline_ms(const std::string& id) const PPROX_EXCLUDES(mutex_);

 private:
  struct Track {
    double baseline_sum = 0;
    std::size_t baseline_count = 0;
    std::deque<double> recent;
  };
  double factor_;
  std::size_t baseline_samples_;
  std::size_t window_;
  mutable Mutex mutex_;
  std::map<std::string, Track> tracks_ PPROX_GUARDED_BY(mutex_);
};

/// Outcome of a key-rotation pass.
struct RotationResult {
  ApplicationKeys new_keys;
  std::size_t rows_reencrypted = 0;
};

/// Rotates both layers' secrets and re-encrypts the LRS database in place:
/// every stored (user, item) pseudonym pair is de-pseudonymized with the old
/// permanent keys and re-pseudonymized with fresh ones. Fails without
/// touching the LRS if any row cannot be decrypted (corrupt state). After
/// rotation the old secrets — even if fully leaked — decrypt nothing, and
/// the LRS must be retrained (pseudonym spaces changed).
Result<RotationResult> rotate_keys(const ApplicationKeys& old_keys,
                                   lrs::HarnessServer& lrs, RandomSource& rng,
                                   std::size_t rsa_bits = 1024);

}  // namespace pprox
