// PPROX-LAYER: ua
#include "pprox/logic_ua.hpp"

#include <algorithm>

#include "json/json.hpp"
#include "pprox/pseudonymize.hpp"

namespace pprox {

UaLogic::UaLogic(LayerSecrets secrets)
    : secrets_(std::move(secrets)), det_(secrets_.k) {}

Result<UaLogic> UaLogic::from_secrets(ByteView secrets_blob) {
  auto secrets = LayerSecrets::deserialize(secrets_blob);
  if (!secrets.ok()) return secrets.error();
  return UaLogic(std::move(secrets.value()));
}

Result<std::string> UaLogic::transform_request(std::string body) const {
  const auto user_cipher = json::get_string_field(body, fields::kUser);
  // PPROX-CT-OK(branch): presence of the user field is public JSON framing
  // of an adversary-visible request; the 4xx reveals the same bit.
  if (!user_cipher) return Error::parse("request has no user field");
  auto pseudonym =
      pseudonymize_field<taint::UserDomain>(secrets_.sk, det_, *user_cipher);
  if (!pseudonym.ok()) return pseudonym.error();
  json::replace_string_field(body, fields::kUser, pseudonym.value());
  return body;
}

void UaLogic::transform_batch(std::span<UaBatchSlot> slots,
                              BatchArena& arena) {
  // Phase 1 — decode + RSA-unwrap every slot's identifier into arena-staged
  // 48-byte blocks. Error strings match the sequential path exactly so the
  // differential test can compare failures bit-for-bit too.
  for (UaBatchSlot& slot : slots) {
    const auto user_cipher = json::get_string_field(*slot.body, fields::kUser);
    // PPROX-CT-OK(branch): presence of the user field is public JSON framing
    // of an adversary-visible request; the 4xx reveals the same bit.
    if (!user_cipher) {
      slot.status = Error::parse("request has no user field");
      continue;
    }
    const auto cipher = base64_decode(*user_cipher);
    // PPROX-CT-OK(branch): base64 framing of adversary-chosen wire input.
    if (!cipher) {
      slot.status = Error::parse("field is not valid base64");
      continue;
    }
    auto plain = crypto::rsa_decrypt_oaep(slot.logic->secrets_.sk, *cipher);
    if (!plain.ok()) {
      slot.status = plain.error();
      continue;
    }
    if (plain.value().size() != kIdBlockSize) {
      slot.status = Error::crypto("decrypted identifier block has wrong size");
      continue;
    }
    const SensitiveBlock<taint::UserDomain> block{std::move(plain.value())};
    slot.staged = arena.alloc(kIdBlockSize);
    // PPROX-DECLASSIFY: det_enc under kUA is applied in phase 2; the staged
    // copy lives only in the arena, which the host wipes after the batch.
    const Bytes& raw = taint::declassify_for_pseudonymization(block);
    std::copy(raw.begin(), raw.end(), slot.staged.begin());
  }

  // Phase 2 — vectorized pseudonymize. The zero-IV keystream is message-
  // independent, so one keystream per tenant logic serves every block: this
  // is the 8-wide AES-NI CTR kernel running once per tenant per flush
  // instead of once per request.
  const UaLogic* keyed_for = nullptr;
  MutByteView ks{};
  for (UaBatchSlot& slot : slots) {
    if (!slot.status.ok()) continue;
    // PPROX-CT-OK(branch): tenant-routing identity of the slot, not secret
    // plaintext — which logic instance a request targets is adversary-visible
    // wire metadata; the staged block itself stays branch-free (XOR only).
    if (slot.logic != keyed_for) {
      ks = arena.alloc(kIdBlockSize);
      slot.logic->det_.keystream(ks);
      keyed_for = slot.logic;
    }
    xor_into(slot.staged, ks);
  }

  // Phase 3 — re-encode and splice the pseudonym back into each body.
  for (UaBatchSlot& slot : slots) {
    if (!slot.status.ok()) continue;
    json::replace_string_field(*slot.body, fields::kUser,
                               base64_encode(slot.staged));
  }
}

Result<PseudonymizedId> UaLogic::pseudonym_of(const UserId& user) const {
  auto block = pad_sensitive_id(user);
  if (!block.ok()) return block.error();
  // PPROX-DECLASSIFY: det_enc under kUA — the released value is the user's
  // LRS-facing pseudonym, which the protocol is designed to expose.
  return PseudonymizedId{base64_encode(
      det_.encrypt(taint::declassify_for_pseudonymization(block.value())))};
}

}  // namespace pprox
