// PPROX-LAYER: ua
#include "pprox/logic_ua.hpp"

#include "json/json.hpp"
#include "pprox/pseudonymize.hpp"

namespace pprox {

UaLogic::UaLogic(LayerSecrets secrets)
    : secrets_(std::move(secrets)), det_(secrets_.k) {}

Result<UaLogic> UaLogic::from_secrets(ByteView secrets_blob) {
  auto secrets = LayerSecrets::deserialize(secrets_blob);
  if (!secrets.ok()) return secrets.error();
  return UaLogic(std::move(secrets.value()));
}

Result<std::string> UaLogic::transform_request(std::string body) const {
  const auto user_cipher = json::get_string_field(body, fields::kUser);
  // PPROX-CT-OK(branch): presence of the user field is public JSON framing
  // of an adversary-visible request; the 4xx reveals the same bit.
  if (!user_cipher) return Error::parse("request has no user field");
  auto pseudonym =
      pseudonymize_field<taint::UserDomain>(secrets_.sk, det_, *user_cipher);
  if (!pseudonym.ok()) return pseudonym.error();
  json::replace_string_field(body, fields::kUser, pseudonym.value());
  return body;
}

Result<PseudonymizedId> UaLogic::pseudonym_of(const UserId& user) const {
  auto block = pad_sensitive_id(user);
  if (!block.ok()) return block.error();
  // PPROX-DECLASSIFY: det_enc under kUA — the released value is the user's
  // LRS-facing pseudonym, which the protocol is designed to expose.
  return PseudonymizedId{base64_encode(
      det_.encrypt(taint::declassify_for_pseudonymization(block.value())))};
}

}  // namespace pprox
