#include "pprox/rotation.hpp"

#include <numeric>

#include "common/encoding.hpp"
#include "crypto/ctr.hpp"
#include "pprox/message.hpp"

namespace pprox {

void BreachMonitor::record(const std::string& id, double ecall_latency_ms) {
  LockGuard lock(mutex_);
  Track& track = tracks_[id];
  if (track.baseline_count < baseline_samples_) {
    track.baseline_sum += ecall_latency_ms;
    ++track.baseline_count;
    return;
  }
  track.recent.push_back(ecall_latency_ms);
  if (track.recent.size() > window_) track.recent.pop_front();
}

double BreachMonitor::baseline_ms(const std::string& id) const {
  LockGuard lock(mutex_);
  const auto it = tracks_.find(id);
  if (it == tracks_.end() || it->second.baseline_count < baseline_samples_) {
    return 0;
  }
  return it->second.baseline_sum / static_cast<double>(it->second.baseline_count);
}

bool BreachMonitor::attack_suspected(const std::string& id) const {
  LockGuard lock(mutex_);
  const auto it = tracks_.find(id);
  if (it == tracks_.end()) return false;
  const Track& track = it->second;
  // Only alarm with an established baseline and a full recent window —
  // a cold or idle enclave must not trip the detector.
  if (track.baseline_count < baseline_samples_ || track.recent.size() < window_) {
    return false;
  }
  const double baseline =
      track.baseline_sum / static_cast<double>(track.baseline_count);
  const double recent =
      std::accumulate(track.recent.begin(), track.recent.end(), 0.0) /
      static_cast<double>(track.recent.size());
  return recent > baseline * factor_;
}

namespace {

/// De-pseudonymizes a base64 block with `key`; error when malformed.
Result<std::string> strip_pseudonym(const Bytes& key, const std::string& field) {
  const auto cipher = base64_decode(field);
  // PPROX-CT-OK(branch): base64/size framing of stored wire-format rows;
  // both are public structure, not pseudonym contents.
  if (!cipher || cipher->size() != kIdBlockSize) {
    return Error::parse("pseudonym malformed during rotation");
  }
  const crypto::DeterministicCipher det(key);
  return unpad_identifier(det.decrypt(*cipher));
}

Result<std::string> make_pseudonym(const Bytes& key, const std::string& id) {
  auto block = pad_identifier(id);
  if (!block.ok()) return block.error();
  const crypto::DeterministicCipher det(key);
  return base64_encode(det.encrypt(block.value()));
}

}  // namespace

Result<RotationResult> rotate_keys(const ApplicationKeys& old_keys,
                                   lrs::HarnessServer& lrs, RandomSource& rng,
                                   std::size_t rsa_bits) {
  RotationResult result;
  result.new_keys = ApplicationKeys::generate(rng, rsa_bits);

  // Download + re-encrypt locally. Nothing is written back until every row
  // re-encrypted cleanly, so a corrupt row cannot leave the store half-rotated.
  const auto rows = lrs.dump_event_rows();
  std::vector<lrs::HarnessServer::EventRow> rotated;
  rotated.reserve(rows.size());
  for (const auto& row : rows) {
    auto user = strip_pseudonym(old_keys.ua.k, row.user);
    if (!user.ok()) return user.error();
    auto item = strip_pseudonym(old_keys.ia.k, row.item);
    if (!item.ok()) return item.error();
    auto new_user = make_pseudonym(result.new_keys.ua.k, user.value());
    if (!new_user.ok()) return new_user.error();
    auto new_item = make_pseudonym(result.new_keys.ia.k, item.value());
    if (!new_item.ok()) return new_item.error();
    rotated.push_back({std::move(new_user.value()), std::move(new_item.value()),
                       row.payload});
  }

  // Re-upload under the fresh pseudonym space.
  lrs.replace_all_events(rotated);
  result.rows_reencrypted = rotated.size();
  return result;
}

}  // namespace pprox
