// PPROX-LAYER: shared
#include "pprox/batch.hpp"

#include <algorithm>

namespace pprox {

BatchArena::BatchArena(std::size_t capacity) : storage_(capacity, 0) {}

BatchArena::~BatchArena() { wipe_and_reset(); }

MutByteView BatchArena::alloc(std::size_t n) {
  if (used_ + n <= storage_.size()) {
    MutByteView view(storage_.data() + used_, n);
    used_ += n;
    std::fill(view.begin(), view.end(), std::uint8_t{0});
    return view;
  }
  // PPROX-HOTPATH-OK(alloc): overflow chunk — only taken when a batch
  // outgrows the construction-time reservation (scratch is sized for S full
  // responses, so this is a sizing bug surfacing cold, not steady state).
  overflow_.emplace_back(n, 0);
  return MutByteView(overflow_.back());
}

void BatchArena::wipe_and_reset() {
  secure_wipe(MutByteView(storage_.data(), used_));
  used_ = 0;
  for (Bytes& chunk : overflow_) secure_wipe(chunk);
  overflow_.clear();
}

}  // namespace pprox
