// PPROX-LAYER: shared
//
// Request/response shuffling buffer (paper §4.3, Fig. 5): actions are
// buffered until S of them are pending or a timer expires, then released in
// randomized order. Breaks the temporal correlation between a proxy layer's
// inbound and outbound messages.
//
// The buffered release actions close over *ciphertext only* (an already-
// transformed request or a sealed response): this TU is flow-lint "shared",
// so it can never name a taint domain or declassifier, and the only way a
// cleartext identifier could enter a closure is through a declassify_* call
// upstream — which the lint audits at that call site.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rand.hpp"
#include "common/thread_annotations.hpp"
#include "crypto/drbg.hpp"

namespace pprox {

class ShuffleQueue {
 public:
  /// size <= 1 disables buffering (actions pass straight through).
  /// The timer bounds worst-case queuing delay under low traffic.
  ShuffleQueue(int size, std::chrono::milliseconds timeout);
  ~ShuffleQueue();

  ShuffleQueue(const ShuffleQueue&) = delete;
  ShuffleQueue& operator=(const ShuffleQueue&) = delete;

  /// Adds a release action. May synchronously flush (and run actions on the
  /// calling thread) when the buffer reaches S.
  void add(std::function<void()> release) PPROX_EXCLUDES(mutex_);

  /// Forces an immediate flush (used by tests and shutdown).
  void flush_now() PPROX_EXCLUDES(mutex_);

  std::size_t buffered() const PPROX_EXCLUDES(mutex_);
  std::uint64_t flush_count() const {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  void timer_loop() PPROX_EXCLUDES(mutex_);
  void run_batch(std::vector<std::function<void()>> batch)
      PPROX_EXCLUDES(mutex_);

  const int size_;
  const std::chrono::milliseconds timeout_;
  crypto::Drbg rng_;  // internally synchronized

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> buffer_ PPROX_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point deadline_ PPROX_GUARDED_BY(mutex_){};
  bool deadline_armed_ PPROX_GUARDED_BY(mutex_) = false;
  bool stopping_ PPROX_GUARDED_BY(mutex_) = false;
  std::atomic<std::uint64_t> flushes_{0};  // read lock-free by flush_count()
  std::thread timer_;
};

}  // namespace pprox
