// Request/response shuffling buffer (paper §4.3, Fig. 5): actions are
// buffered until S of them are pending or a timer expires, then released in
// randomized order. Breaks the temporal correlation between a proxy layer's
// inbound and outbound messages.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rand.hpp"
#include "crypto/drbg.hpp"

namespace pprox {

class ShuffleQueue {
 public:
  /// size <= 1 disables buffering (actions pass straight through).
  /// The timer bounds worst-case queuing delay under low traffic.
  ShuffleQueue(int size, std::chrono::milliseconds timeout);
  ~ShuffleQueue();

  ShuffleQueue(const ShuffleQueue&) = delete;
  ShuffleQueue& operator=(const ShuffleQueue&) = delete;

  /// Adds a release action. May synchronously flush (and run actions on the
  /// calling thread) when the buffer reaches S.
  void add(std::function<void()> release);

  /// Forces an immediate flush (used by tests and shutdown).
  void flush_now();

  std::size_t buffered() const;
  std::uint64_t flush_count() const { return flushes_; }

 private:
  void timer_loop();
  void run_batch(std::vector<std::function<void()>> batch);

  const int size_;
  const std::chrono::milliseconds timeout_;
  crypto::Drbg rng_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> buffer_;
  std::chrono::steady_clock::time_point deadline_{};
  bool deadline_armed_ = false;
  bool stopping_ = false;
  std::uint64_t flushes_ = 0;
  std::thread timer_;
};

}  // namespace pprox
