// PPROX-LAYER: shared
//
// Request/response shuffling buffer (paper §4.3, Fig. 5): actions are
// buffered until S of them are pending or a timer expires, then released in
// randomized order. Breaks the temporal correlation between a proxy layer's
// inbound and outbound messages.
//
// The buffered release actions close over *ciphertext only* (an already-
// transformed request or a sealed response): this TU is flow-lint "shared",
// so it can never name a taint domain or declassifier, and the only way a
// cleartext identifier could enter a closure is through a declassify_* call
// upstream — which the lint audits at that call site.
#pragma once

#include <chrono>
#include <functional>
#include <vector>

#include "common/hotpath.hpp"
#include "common/rand.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "crypto/drbg.hpp"

namespace pprox {

class ShuffleQueue {
 public:
  /// Why a batch was released. Observable via set_flush_observer so the
  /// pprox_check shuffle model can verify "flush at exactly S or timer".
  enum class FlushReason { kSize, kTimer, kExplicit };

  /// Snapshot of one flush, taken under the queue lock at swap time.
  struct FlushInfo {
    FlushReason reason;
    std::size_t batch_size;
    /// Deadline of the arming epoch current at swap time (kTimer only).
    SteadyClock::time_point deadline;
    SteadyClock::time_point now;
  };
  using FlushObserver = std::function<void(const FlushInfo&)>;

  /// size <= 1 disables buffering (actions pass straight through).
  /// The timer bounds worst-case queuing delay under low traffic.
  ShuffleQueue(int size, std::chrono::milliseconds timeout);
  ~ShuffleQueue();

  ShuffleQueue(const ShuffleQueue&) = delete;
  ShuffleQueue& operator=(const ShuffleQueue&) = delete;

  /// Test/model observer invoked (outside the lock, on the flushing thread)
  /// for every non-empty batch, before its actions run. Set before any
  /// concurrent use; not synchronized against in-flight flushes.
  void set_flush_observer(FlushObserver observer) {
    observer_ = std::move(observer);
  }

  /// Adds a release action. May synchronously flush (and run actions on the
  /// calling thread) when the buffer reaches S.
  PPROX_HOT void add(std::function<void()> release) PPROX_EXCLUDES(mutex_);

  /// Forces an immediate flush (used by tests and shutdown).
  void flush_now() PPROX_EXCLUDES(mutex_);

  std::size_t buffered() const PPROX_EXCLUDES(mutex_);
  std::uint64_t flush_count() const {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  void timer_loop() PPROX_EXCLUDES(mutex_);
  void run_batch(std::vector<std::function<void()>> batch,
                 const FlushInfo& info) PPROX_EXCLUDES(mutex_);

  const int size_;
  const std::chrono::milliseconds timeout_;
  crypto::Drbg rng_;  // internally synchronized
  FlushObserver observer_;  // set once before concurrent use

  mutable Mutex mutex_;
  CondVar cv_;
  std::vector<std::function<void()>> buffer_ PPROX_GUARDED_BY(mutex_);
  SteadyClock::time_point deadline_ PPROX_GUARDED_BY(mutex_){};
  bool deadline_armed_ PPROX_GUARDED_BY(mutex_) = false;
  // Bumped on every arm/disarm so the timer can tell a wake-up for the
  // deadline it armed from a wake-up for a successor deadline.
  std::uint64_t arm_generation_ PPROX_GUARDED_BY(mutex_) = 0;
  bool stopping_ PPROX_GUARDED_BY(mutex_) = false;
  Atomic<std::uint64_t> flushes_{0};  // read lock-free by flush_count()
  DetThread timer_;
};

}  // namespace pprox
