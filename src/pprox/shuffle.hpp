// PPROX-LAYER: shared
//
// Request/response shuffling buffer (paper §4.3, Fig. 5): items are
// buffered until S of them are pending or a timer expires, then released in
// randomized order. Breaks the temporal correlation between a proxy layer's
// inbound and outbound messages.
//
// The queue is generic over the buffered item type. The default (a
// type-erased closure) keeps the historical "buffer of release actions"
// behaviour; the proxy instantiates it with *typed* pending-request/response
// structs instead, so a whole batch can cross the enclave boundary as one
// ecall (ROADMAP item 3) through the batch sink:
//
//   * set_batch_sink(fn): on every flush, `fn(span<Item>, FlushInfo)` is
//     invoked once with the already-shuffled batch. The vector's storage
//     stays owned by the queue and is recycled (two pre-reserved buffers
//     ping-pong between "filling" and "releasing"), so the steady-state
//     add()/flush cycle performs no heap allocation at all — the fix for
//     the old per-action std::function capture allocation.
//   * without a sink, each item is invoked if the item type is callable
//     (the historical behaviour); non-callable items require a sink before
//     first use.
//
// Buffered items carry *ciphertext only* (an already-transformed request or
// a sealed response) or plaintext that is still sealed inside an HTTP body
// awaiting its in-enclave batch transform: this TU is flow-lint "shared",
// so it can never name a taint domain or declassifier, and cleartext could
// only leak through a declassify_* call upstream — which the lint audits at
// that call site.
#pragma once

#include <chrono>
#include <functional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hotpath.hpp"
#include "common/rand.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "crypto/drbg.hpp"

namespace pprox {

/// Why a batch was released. Observable via set_flush_observer so the
/// pprox_check shuffle model can verify "flush at exactly S or timer".
enum class FlushReason { kSize, kTimer, kExplicit };

/// Snapshot of one flush, taken under the queue lock at swap time.
struct FlushInfo {
  FlushReason reason;
  std::size_t batch_size;
  /// Deadline of the arming epoch current at swap time (kTimer only).
  SteadyClock::time_point deadline;
  SteadyClock::time_point now;
};
using FlushObserver = std::function<void(const FlushInfo&)>;

template <typename Item = std::function<void()>>
class ShuffleQueue {
 public:
  /// Invoked once per released batch with the shuffled items. The span's
  /// backing storage belongs to the queue (recycled across flushes): the
  /// sink must move what it needs out of the items before returning.
  using BatchSink = std::function<void(std::span<Item>, const FlushInfo&)>;

  /// size <= 1 disables buffering (items pass straight through, each as a
  /// single-item batch when a sink is set). The timer bounds worst-case
  /// queuing delay under low traffic.
  ShuffleQueue(int size, std::chrono::milliseconds timeout)
      : size_(size), timeout_(timeout) {
    if (size_ > 1) {
      // A batch can never exceed S items, and a releasing batch returns its
      // storage before the next flush in steady state: reserving two
      // buffers here makes the add()/flush cycle allocation-free.
      buffer_.reserve(static_cast<std::size_t>(size_));
      spare_.reserve(static_cast<std::size_t>(size_));
      timer_ = DetThread([this] { timer_loop(); }, "shuffle-timer");
    }
  }

  ~ShuffleQueue() {
    {
      LockGuard lock(mutex_);
      stopping_ = true;
      cv_.notify_all();
    }
    if (timer_.joinable()) timer_.join();
    flush_now();  // do not strand queued work
  }

  ShuffleQueue(const ShuffleQueue&) = delete;
  ShuffleQueue& operator=(const ShuffleQueue&) = delete;

  /// Test/model observer invoked (outside the lock, on the flushing thread)
  /// for every non-empty batch, before its items are released. Set before
  /// any concurrent use; not synchronized against in-flight flushes.
  void set_flush_observer(FlushObserver observer) {
    observer_ = std::move(observer);
  }

  /// Batch release hook; set before any concurrent use. See BatchSink.
  void set_batch_sink(BatchSink sink) { sink_ = std::move(sink); }

  /// Adds an item. May synchronously flush (and release the batch on the
  /// calling thread) when the buffer reaches S.
  PPROX_HOT void add(Item item) PPROX_EXCLUDES(mutex_) {
    if (size_ <= 1) {
      pass_through(std::move(item));
      return;
    }
    std::vector<Item> batch;
    FlushInfo info{FlushReason::kSize, 0, {}, {}};
    {
      LockGuard lock(mutex_);
      // PPROX-HOTPATH-OK(alloc): buffer_ is pre-reserved to S at
      // construction and refilled from the reserved spare at swap time, so
      // the steady-state push_back never grows.
      buffer_.push_back(std::move(item));
      if (static_cast<int>(buffer_.size()) >= size_) {
        batch.swap(buffer_);
        refill_buffer_locked();
        deadline_armed_ = false;
        ++arm_generation_;
        info = FlushInfo{FlushReason::kSize, batch.size(), deadline_,
                         SteadyClock::now()};
      } else if (buffer_.size() == 1) {
        deadline_ = SteadyClock::now() + timeout_;
        deadline_armed_ = true;
        ++arm_generation_;
        cv_.notify_all();
      }
    }
    if (!batch.empty()) release(std::move(batch), info);
  }

  /// Forces an immediate flush (used by tests and shutdown).
  void flush_now() PPROX_EXCLUDES(mutex_) {
    std::vector<Item> batch;
    FlushInfo info{FlushReason::kExplicit, 0, {}, {}};
    {
      LockGuard lock(mutex_);
      batch.swap(buffer_);
      refill_buffer_locked();
      deadline_armed_ = false;
      ++arm_generation_;
      info = FlushInfo{FlushReason::kExplicit, batch.size(), deadline_,
                       SteadyClock::now()};
    }
    if (!batch.empty()) release(std::move(batch), info);
  }

  std::size_t buffered() const PPROX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    return buffer_.size();
  }
  std::uint64_t flush_count() const {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  /// size <= 1: no buffering, no observer, no flush accounting — but a
  /// configured sink still sees the item as a single-item batch so callers
  /// keep one code path for both modes.
  PPROX_HOT void pass_through(Item item) PPROX_EXCLUDES(mutex_) {
    if (!sink_) {
      if constexpr (std::is_invocable_v<Item&>) {
        item();
      }
      return;
    }
    std::vector<Item> batch;
    {
      LockGuard lock(mutex_);
      batch = take_spare_locked(1);
    }
    batch.push_back(std::move(item));
    sink_(std::span<Item>(batch),
          FlushInfo{FlushReason::kExplicit, 1, {}, SteadyClock::now()});
    recycle(std::move(batch));
  }

  /// Replaces buffer_ (just swapped out) with reserved storage. Called
  /// under the queue lock at every swap.
  void refill_buffer_locked() PPROX_REQUIRES(mutex_) {
    buffer_ = take_spare_locked(static_cast<std::size_t>(size_));
  }

  std::vector<Item> take_spare_locked(std::size_t capacity)
      PPROX_REQUIRES(mutex_) {
    std::vector<Item> storage;
    if (spare_.capacity() >= capacity) {
      storage.swap(spare_);
    } else {
      // PPROX-HOTPATH-OK(alloc): cold — only when a previous batch is still
      // releasing concurrently (two flushes in flight); steady state reuses
      // the two construction-time reservations.
      storage.reserve(capacity);
    }
    return storage;
  }

  /// Returns a released batch's storage to the spare slot for the next swap.
  void recycle(std::vector<Item>&& batch) PPROX_EXCLUDES(mutex_) {
    batch.clear();
    LockGuard lock(mutex_);
    if (spare_.capacity() < batch.capacity()) spare_ = std::move(batch);
  }

  void release(std::vector<Item>&& batch, const FlushInfo& info)
      PPROX_EXCLUDES(mutex_) {
    if (observer_) observer_(info);
    shuffle(batch, rng_);
    flushes_.fetch_add(1, std::memory_order_relaxed);
    if (sink_) {
      sink_(std::span<Item>(batch), info);
    } else if constexpr (std::is_invocable_v<Item&>) {
      for (auto& item : batch) item();
    }
    recycle(std::move(batch));
  }

#ifdef PPROX_CHECK_SELFTEST
  // Fault injection for pprox_check --model shuffle (tools/CMakeLists.txt):
  // the pre-fix timer loop, preserved verbatim. wait_until() snapshots
  // deadline_ once, so when a size-triggered flush disarms and a later
  // add() re-arms while the timer is parked, the timer still times out at
  // the OLD (earlier) deadline and flushes the successor batch before its
  // delay bound (tools/traces/shuffle_stale_deadline.txt). The selftest
  // build must make the model FAIL on exactly this schedule.
  void timer_loop() PPROX_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    while (!stopping_) {
      if (!deadline_armed_) {
        cv_.wait(lock, [this] { return stopping_ || deadline_armed_; });
        continue;
      }
      if (cv_.wait_until(lock, deadline_, [this] {
            return stopping_ || !deadline_armed_;
          })) {
        continue;  // re-armed, flushed by size, or stopping
      }
      // Deadline reached with the buffer still pending: flush it.
      std::vector<Item> batch;
      batch.swap(buffer_);
      refill_buffer_locked();
      deadline_armed_ = false;
      ++arm_generation_;
      const FlushInfo info{FlushReason::kTimer, batch.size(), deadline_,
                           SteadyClock::now()};
      {
        ScopedUnlock unlocked(lock);
        if (!batch.empty()) release(std::move(batch), info);
      }
    }
  }
#else
  void timer_loop() PPROX_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    while (!stopping_) {
      if (!deadline_armed_) {
        cv_.wait(lock, [this] { return stopping_ || deadline_armed_; });
        continue;
      }
      // A timeout may only flush the arming it waited on. The generation
      // stamp distinguishes "this arming's deadline passed" from "the
      // arming changed underneath the wait": without it, a size-flush +
      // re-arm while the timer is parked leaves the wait bound to the
      // retired (earlier) deadline, and the successor batch gets flushed
      // before its delay bound (tools/traces/shuffle_stale_deadline.txt).
      const std::uint64_t gen = arm_generation_;
      const auto deadline = deadline_;
      const bool changed = cv_.wait_until(lock, deadline, [this, gen] {
        return stopping_ || !deadline_armed_ || arm_generation_ != gen;
      });
      if (changed || stopping_ || !deadline_armed_ ||
          arm_generation_ != gen) {
        continue;  // re-armed, flushed by size, or stopping
      }
      // This arming's deadline passed with its buffer still pending: flush.
      std::vector<Item> batch;
      batch.swap(buffer_);
      refill_buffer_locked();
      deadline_armed_ = false;
      ++arm_generation_;
      const FlushInfo info{FlushReason::kTimer, batch.size(), deadline,
                           SteadyClock::now()};
      {
        ScopedUnlock unlocked(lock);
        if (!batch.empty()) release(std::move(batch), info);
      }
    }
  }
#endif  // PPROX_CHECK_SELFTEST

  const int size_;
  const std::chrono::milliseconds timeout_;
  crypto::Drbg rng_;  // internally synchronized
  FlushObserver observer_;  // set once before concurrent use
  BatchSink sink_;          // set once before concurrent use

  mutable Mutex mutex_;
  CondVar cv_;
  std::vector<Item> buffer_ PPROX_GUARDED_BY(mutex_);
  /// Reserved storage handed to buffer_ at swap time and refilled when the
  /// released batch returns — the second half of the ping-pong pair.
  std::vector<Item> spare_ PPROX_GUARDED_BY(mutex_);
  SteadyClock::time_point deadline_ PPROX_GUARDED_BY(mutex_){};
  bool deadline_armed_ PPROX_GUARDED_BY(mutex_) = false;
  // Bumped on every arm/disarm so the timer can tell a wake-up for the
  // deadline it armed from a wake-up for a successor deadline.
  std::uint64_t arm_generation_ PPROX_GUARDED_BY(mutex_) = 0;
  bool stopping_ PPROX_GUARDED_BY(mutex_) = false;
  Atomic<std::uint64_t> flushes_{0};  // read lock-free by flush_count()
  DetThread timer_;
};

}  // namespace pprox
