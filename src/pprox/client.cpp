// PPROX-LAYER: client
#include "pprox/client.hpp"

#include "common/encoding.hpp"
#include "crypto/ctr.hpp"
#include "crypto/gcm.hpp"
#include "crypto/drbg.hpp"
#include "json/json.hpp"
#include "pprox/tenancy.hpp"

namespace pprox {

ClientLibrary::ClientLibrary(ClientParams params,
                             std::shared_ptr<net::HttpChannel> channel,
                             RandomSource* rng, std::string tenant_id)
    : params_(std::move(params)),
      channel_(std::move(channel)),
      rng_(rng != nullptr ? rng : &crypto::global_drbg()),
      tenant_id_(std::move(tenant_id)) {}

Result<std::string> ClientLibrary::encrypt_block_for(
    const crypto::RsaPublicKey& pk, ByteView block) {
  auto cipher = crypto::rsa_encrypt_oaep(pk, block, *rng_);
  if (!cipher.ok()) return cipher.error();
  return base64_encode(cipher.value());
}

Result<http::HttpRequest> ClientLibrary::build_post_request(
    const std::string& user, const std::string& item,
    const std::string& payload) {
  // Wrap at the application boundary: from here on the identifiers are
  // domain-typed and can only exit through an encryption declassifier.
  const UserId user_id{user};
  const ItemId item_id{item};
  auto enc_user = encrypt_sensitive_for(params_.pk_ua, user_id);
  if (!enc_user.ok()) return enc_user.error();
  auto enc_item = encrypt_sensitive_for(params_.pk_ia, item_id);
  if (!enc_item.ok()) return enc_item.error();

  json::JsonValue body{json::JsonObject{}};
  body.set(fields::kUser, enc_user.value());
  body.set(fields::kItem, enc_item.value());
  if (!payload.empty()) {
    // The payload rides in the same fixed-size encrypted block format as
    // identifiers, for exclusive visibility by the IA layer (ItemDomain).
    const ItemId payload_value{payload};
    auto enc_payload = encrypt_sensitive_for(params_.pk_ia, payload_value);
    if (!enc_payload.ok()) return enc_payload.error();
    body.set(fields::kPayload, enc_payload.value());
  }

  http::HttpRequest request;
  request.method = "POST";
  request.target = paths::kEvents;
  request.set_header("Content-Type", "application/json");
  if (!tenant_id_.empty()) request.set_header(kTenantHeader, tenant_id_);
  request.body = body.dump();
  return request;
}

Result<ClientLibrary::GetCall> ClientLibrary::build_get_request(
    const std::string& user) {
  const UserId user_id{user};
  auto enc_user = encrypt_sensitive_for(params_.pk_ua, user_id);
  if (!enc_user.ok()) return enc_user.error();

  // Fresh temporary key per get call (paper §4.1): protects the returned
  // list from the UA layer; encrypted so only the IA layer can recover it.
  Bytes k_u = rng_->bytes(32);
  auto enc_key = crypto::rsa_encrypt_oaep(params_.pk_ia, k_u, *rng_);
  if (!enc_key.ok()) return enc_key.error();

  json::JsonValue body{json::JsonObject{}};
  body.set(fields::kUser, enc_user.value());
  body.set(fields::kTempKey, base64_encode(enc_key.value()));

  GetCall call;
  call.request.method = "POST";
  call.request.target = paths::kQueries;
  call.request.set_header("Content-Type", "application/json");
  if (!tenant_id_.empty()) call.request.set_header(kTenantHeader, tenant_id_);
  call.request.body = body.dump();
  call.k_u = std::move(k_u);
  return call;
}

Result<std::vector<std::string>> ClientLibrary::decode_get_response(
    const http::HttpResponse& response, ByteView k_u) {
  if (response.status != 200) {
    return Error::unavailable("get failed with HTTP " +
                              std::to_string(response.status));
  }
  const auto payload_b64 =
      json::get_string_field(response.body, fields::kPayload);
  if (!payload_b64) return Error::parse("response has no payload field");
  const auto payload = base64_decode(*payload_b64);
  if (!payload) return Error::parse("payload is not valid base64");

  // The response self-describes its encryption mode; GCM additionally
  // authenticates (a tampered list is rejected, not silently garbled).
  const auto mode = json::get_string_field(response.body, fields::kEncryptionMode);
  Result<Bytes> block = Error::internal("unset");
  if (mode.has_value() && *mode == "gcm") {
    const crypto::AesGcm cipher(k_u);
    block = cipher.open_with_nonce(*payload);
  } else {
    const crypto::RandomIvCipher cipher(k_u);
    block = cipher.decrypt(*payload);
  }
  if (!block.ok()) return block.error();
  // The freshly decrypted list is item-domain plaintext; it is released to
  // the application only because this code runs on the user's side.
  auto items =
      decode_sensitive_response_block<taint::ItemDomain>(block.value());
  if (!items.ok()) return items.error();
  std::vector<std::string> plain;
  plain.reserve(items.value().size());
  for (ItemId& item : items.value()) {
    // PPROX-DECLASSIFY: client-side release of the user's own recommendation
    // list to the calling application (paper §2.2 trust model).
    plain.push_back(taint::declassify_for_client(std::move(item)));
  }
  return strip_pad_items(std::move(plain));
}

void ClientLibrary::post(const std::string& user, const std::string& item,  // PPROX-HOTPATH-OK(recursion): overload delegation — the 3-arg post forwards to the 4-arg one; merged-by-name nodes read it as a self call
                         std::function<void(Status)> done) {
  post(user, item, "", std::move(done));
}

void ClientLibrary::post(const std::string& user, const std::string& item,
                         const std::string& payload,
                         std::function<void(Status)> done) {
  auto request = build_post_request(user, item, payload);
  if (!request.ok()) {
    done(request.error());
    return;
  }
  channel_->send(std::move(request.value()),
                 [done = std::move(done)](http::HttpResponse response) {
                   if (response.status >= 200 && response.status < 300) {
                     done(Status::ok_status());
                   } else {
                     done(Error::unavailable("post failed with HTTP " +
                                             std::to_string(response.status)));
                   }
                 });
}

void ClientLibrary::get(
    const std::string& user,
    std::function<void(Result<std::vector<std::string>>)> done) {
  auto call = build_get_request(user);
  if (!call.ok()) {
    done(call.error());
    return;
  }
  auto k_u = std::move(call.value().k_u);
  channel_->send(std::move(call.value().request),
                 [done = std::move(done), k_u = std::move(k_u)](
                     http::HttpResponse response) {
                   done(decode_get_response(response, k_u));
                 });
}

Status ClientLibrary::post_sync(const std::string& user, const std::string& item,
                                const std::string& payload) {
  std::promise<Status> promise;
  auto future = promise.get_future();
  post(user, item, payload,
       [&promise](Status s) { promise.set_value(std::move(s)); });
  return future.get();
}

Result<std::vector<std::string>> ClientLibrary::get_sync(const std::string& user) {
  std::promise<Result<std::vector<std::string>>> promise;
  auto future = promise.get_future();
  get(user, [&promise](Result<std::vector<std::string>> r) {
    promise.set_value(std::move(r));
  });
  return future.get();
}

}  // namespace pprox
