// PPROX-LAYER: shared
#include "pprox/message.hpp"

#include <array>
#include <cstring>

#include "crypto/ct.hpp"
#include "json/json.hpp"

namespace pprox {

const std::string& pad_item_name(std::size_t index) {
  // The pseudo-item names are protocol constants: build them once instead of
  // re-running std::to_string + concatenation for every padded response.
  static const auto kNames = [] {
    std::array<std::string, kMaxRecommendations> names;
    for (std::size_t i = 0; i < names.size(); ++i) {
      names[i] = kPadItemPrefix + std::to_string(i);  // PPROX-HOTPATH-OK(alloc): function-local static table, built once on first use, not per request
    }
    return names;
  }();
  return kNames[index % kMaxRecommendations];
}

Result<Bytes> pad_identifier(std::string_view id) {
  if (id.size() > kMaxIdLength) {
    return Error::invalid("identifier longer than " +
                          std::to_string(kMaxIdLength) + " bytes");
  }
  Bytes block(kIdBlockSize, 0);
  block[0] = static_cast<std::uint8_t>(id.size() >> 8);
  block[1] = static_cast<std::uint8_t>(id.size());
  std::memcpy(block.data() + 2, id.data(), id.size());
  return block;
}

Result<std::string> unpad_identifier(ByteView block) {
  if (block.size() != kIdBlockSize) {
    return Error::parse("identifier block has wrong size");
  }
  const std::size_t len =
      (static_cast<std::size_t>(block[0]) << 8) | block[1];
  // PPROX-CT-OK(branch): unpadding happens exactly where the identifier is
  // deliberately released (client, or LRS after declassify); its length is
  // part of that release, and the range check reveals only the validity bit
  // the error response exposes anyway. The padding scan below stays ct.
  if (len > kMaxIdLength) return Error::parse("identifier length corrupt");
  // Verify the zero padding in constant time: a decrypted pseudonym block is
  // secret-derived, and rejecting it at the position of the first garbage
  // byte would leak where the plaintext stops. This also rejects malleable
  // blocks whose tail was tampered with.
  if (!crypto::ct_is_zero(block.subspan(2 + len))) {
    return Error::parse("identifier padding corrupt");
  }
  return std::string(reinterpret_cast<const char*>(block.data()) + 2, len);
}

std::vector<std::string> pad_recommendations(std::vector<std::string> items) {
  if (items.size() > kMaxRecommendations) items.resize(kMaxRecommendations);
  std::size_t pad_index = 0;
  while (items.size() < kMaxRecommendations) {
    items.push_back(pad_item_name(pad_index++));
  }
  return items;
}

std::vector<std::string> strip_pad_items(std::vector<std::string> items) {
  const std::string prefix = kPadItemPrefix;
  std::erase_if(items, [&prefix](const std::string& item) {
    return item.compare(0, prefix.size(), prefix) == 0;
  });
  return items;
}

Result<Bytes> encode_response_block(const std::vector<std::string>& items) {
  json::JsonArray arr;
  for (const auto& item : items) arr.emplace_back(item);
  std::string text = json::JsonValue(std::move(arr)).dump();
  if (text.size() > kResponseBlockSize) {
    return Error::invalid("recommendation list exceeds response block");
  }
  text.resize(kResponseBlockSize, ' ');  // JSON parsers ignore the padding
  return to_bytes(text);
}

Result<std::vector<std::string>> decode_response_block(ByteView block) {
  const auto doc = json::parse(to_string(block));
  if (!doc.ok()) return doc.error();
  if (!doc.value().is_array()) return Error::parse("response block not a list");
  std::vector<std::string> items;
  for (const auto& entry : doc.value().as_array()) {
    if (!entry.is_string()) return Error::parse("non-string item in list");
    items.push_back(entry.as_string());
  }
  return items;
}

}  // namespace pprox
