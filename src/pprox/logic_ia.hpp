// PPROX-LAYER: ia
//
// Item-Anonymizer enclave code (paper §4.2). The IA sees item identifiers
// in the clear — and never the user: the user field reaches it already
// pseudonymized by the UA, and no user-plaintext API may be referenced from
// this translation unit (`pprox_lint --flow` fails the build if one is).
//
//  post request:  enc(i,pkIA) -> det_enc(i,kIA)
//  get request:   extract k_u = dec(enc(k_u,pkIA)); strip it from the call
//  get response:  det_enc(i_x,kIA) list -> pad to 20 -> enc(list, k_u)
#pragma once

#include <span>
#include <string>

#include "common/hotpath.hpp"
#include "common/rand.hpp"
#include "common/result.hpp"
#include "crypto/ctr.hpp"
#include "pprox/batch.hpp"
#include "pprox/keys.hpp"
#include "pprox/message.hpp"

namespace pprox {

class IaLogic;

/// One pending request inside a batched IA ecall. The host fills the inputs
/// (`logic`, `body`, `is_get`, `pseudonymize_items`); the enclave rewrites
/// `body` in place, deposits the recovered temporary key in `k_u` for gets,
/// and reports per-slot success in `status`.
struct IaRequestSlot {
  const IaLogic* logic = nullptr;
  std::string* body = nullptr;
  bool is_get = false;
  bool pseudonymize_items = true;
  Bytes k_u;  ///< out: per-request response key (gets only); key material.
  Status status;
};

/// One pending LRS response inside a batched IA seal ecall. `blocks` and
/// `item_count` are enclave-internal arena scratch — hosts must not touch
/// them.
struct IaSealSlot {
  const IaLogic* logic = nullptr;
  const std::string* lrs_body = nullptr;
  ByteView k_u{};
  bool authenticated = false;
  std::string sealed;  ///< out: constant-size k_u-ciphertext JSON envelope.
  Status status;
  MutByteView blocks{};
  std::size_t item_count = 0;
};

/// Item-Anonymizer enclave code.
class IaLogic {
 public:
  static Result<IaLogic> from_secrets(ByteView secrets_blob);

  /// post: pseudonymizes the "item" field and decrypts the optional payload
  /// for the LRS. `pseudonymize_items = false` implements the §6.3 opt-out
  /// (item sent in the clear to the LRS).
  /// PPROX_ECALL_BOUNDARY (here and on the other transforms): these run
  /// inside ecalls, so per-request allocation is an enclave-boundary
  /// violation (ROADMAP item 3); the current JSON/base64 round trips are
  /// ratcheted in tools/hotpath_baseline.json until the batched-transition
  /// arena lands.
  PPROX_ECALL_BOUNDARY Result<std::string> transform_post_request(
      std::string body, bool pseudonymize_items = true) const;

  struct GetRequest {
    std::string body;  ///< forwarded to the LRS (temporary key stripped)
    Bytes k_u;         ///< per-request response key, kept in the EPC store
  };
  /// get: recovers k_u and strips it from the forwarded call.
  PPROX_ECALL_BOUNDARY Result<GetRequest> transform_get_request(
      std::string body) const;

  /// get response: de-pseudonymizes the LRS item list, pads it to the
  /// constant length, and re-encrypts it under k_u for the client.
  /// `authenticated` selects AES-GCM (tamper-evident, +28 bytes) instead of
  /// the paper's plain AES-CTR; the response self-describes its mode.
  PPROX_ECALL_BOUNDARY Result<std::string> transform_get_response(
      const std::string& lrs_body, ByteView k_u, RandomSource& rng,
      bool authenticated = false) const;

  /// Batched request transform: runs transform_post_request /
  /// transform_get_request over every slot inside ONE ecall, so the
  /// simulated transition cost is paid once per flush instead of once per
  /// request. Per-slot failures land in slot.status; other slots complete.
  PPROX_ECALL_BOUNDARY static void transform_batch(
      std::span<IaRequestSlot> slots, BatchArena& arena);

  /// Batched form of transform_get_response: de-pseudonymizes, pads and
  /// seals every slot's LRS item list inside ONE ecall. Pseudonym blocks
  /// are gathered contiguously in `arena` and the zero-IV CTR keystream is
  /// computed once per distinct tenant logic, then XORed across all of that
  /// tenant's blocks (det decrypt, vectorized). `rng` is consumed in slot
  /// order by successful seals only — bit-for-bit identical to S sequential
  /// transform_get_response calls against an equally-seeded source. The
  /// caller owns wiping `arena` after results are copied out.
  PPROX_ECALL_BOUNDARY static void seal_batch(std::span<IaSealSlot> slots,
                                              RandomSource& rng,
                                              BatchArena& arena);

  /// Decrypts one pseudonymized item id. The result is item-domain tainted:
  /// callers must either keep it wrapped (the get-response path re-encrypts
  /// it under k_u) or declassify explicitly (the security tests that model
  /// an adversary holding stolen IA secrets use declassify_for_test).
  Result<ItemId> de_pseudonymize_item(std::string_view base64_cipher) const;

 private:
  explicit IaLogic(LayerSecrets secrets);
  /// Decrypts a base64 RSA field into the padded item-domain plaintext block.
  Result<SensitiveBlock<taint::ItemDomain>> decrypt_item_block(
      std::string_view base64_cipher) const;
  /// Decrypts the base64 RSA field carrying the temporary key k_u. Key
  /// material, not an identifier: it stays raw Bytes and lives in the EPC.
  Result<Bytes> decrypt_key_field(std::string_view base64_cipher) const;

  LayerSecrets secrets_;
  crypto::DeterministicCipher det_;
};

}  // namespace pprox
