// PPROX-LAYER: vocab
//
// In-enclave data-processing logic for the two proxy layers (paper §4.2).
// The two layers live in separate translation units so the information-flow
// lint (tools/pprox_lint --flow) can enforce the unlinkability layering at
// the TU level: logic_ua.* never references item-plaintext APIs, logic_ia.*
// never references user-plaintext APIs. This umbrella header exists for
// hosts (proxy, deployment, tests) that legitimately drive both layers —
// always through ciphertext-in/ciphertext-out transforms.
#pragma once

#include "pprox/logic_ia.hpp"
#include "pprox/logic_ua.hpp"
#include "pprox/pseudonymize.hpp"
