// In-enclave data-processing logic for the two proxy layers (paper §4.2).
// These classes are the *enclave code*: they are constructed from the
// provisioned secrets inside an ecall and perform all cryptographic
// transformations with in-place JSON editing (no DOM, minimal copies — §5).
//
//  UA (User Anonymizer): sees u in the clear, never item identifiers.
//    post/get request:  enc(u,pkUA) -> det_enc(u,kUA)
//    responses:         pass through untouched (they are opaque to UA).
//
//  IA (Item Anonymizer): sees item identifiers in the clear, never u.
//    post request:  enc(i,pkIA) -> det_enc(i,kIA)
//    get request:   extract k_u = dec(enc(k_u,pkIA)); strip it from the call
//    get response:  det_enc(i_x,kIA) list -> pad to 20 -> enc(list, k_u)
#pragma once

#include <string>

#include "common/rand.hpp"
#include "common/result.hpp"
#include "crypto/ctr.hpp"
#include "pprox/keys.hpp"
#include "pprox/message.hpp"

namespace pprox {

/// User-Anonymizer enclave code.
class UaLogic {
 public:
  /// Deserializes the provisioned secrets blob (called inside an ecall).
  static Result<UaLogic> from_secrets(ByteView secrets_blob);

  /// Pseudonymizes the "user" field of a post or get body.
  Result<std::string> transform_request(std::string body) const;

  /// Responses traverse the UA unchanged (encrypted under k_u or opaque).
  std::string transform_response(std::string body) const { return body; }

 private:
  explicit UaLogic(LayerSecrets secrets);
  LayerSecrets secrets_;
  crypto::DeterministicCipher det_;
};

/// Item-Anonymizer enclave code.
class IaLogic {
 public:
  static Result<IaLogic> from_secrets(ByteView secrets_blob);

  /// post: pseudonymizes the "item" field and decrypts the optional payload
  /// for the LRS. `pseudonymize_items = false` implements the §6.3 opt-out
  /// (item sent in the clear to the LRS).
  Result<std::string> transform_post_request(std::string body,
                                             bool pseudonymize_items = true) const;

  struct GetRequest {
    std::string body;  ///< forwarded to the LRS (temporary key stripped)
    Bytes k_u;         ///< per-request response key, kept in the EPC store
  };
  /// get: recovers k_u and strips it from the forwarded call.
  Result<GetRequest> transform_get_request(std::string body) const;

  /// get response: de-pseudonymizes the LRS item list, pads it to the
  /// constant length, and re-encrypts it under k_u for the client.
  /// `authenticated` selects AES-GCM (tamper-evident, +28 bytes) instead of
  /// the paper's plain AES-CTR; the response self-describes its mode.
  Result<std::string> transform_get_response(const std::string& lrs_body,
                                             ByteView k_u, RandomSource& rng,
                                             bool authenticated = false) const;

  /// Decrypts one pseudonymized item id (exposed for the security tests that
  /// model an adversary holding stolen IA secrets).
  Result<std::string> de_pseudonymize_item(std::string_view base64_cipher) const;

 private:
  explicit IaLogic(LayerSecrets secrets);
  /// Decrypts a base64 RSA field into the padded plaintext block.
  Result<Bytes> decrypt_field(std::string_view base64_cipher) const;

  LayerSecrets secrets_;
  crypto::DeterministicCipher det_;
};

/// Shared helper: RSA-decrypt+unpad a base64 identifier field and return its
/// deterministic pseudonym under `det` (base64).
Result<std::string> pseudonymize_field(const crypto::RsaPrivateKey& sk,
                                       const crypto::DeterministicCipher& det,
                                       std::string_view base64_cipher);

}  // namespace pprox
