#include "common/encoding.hpp"

#include <array>

namespace pprox {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

// 256-entry reverse table; 0xFF marks invalid, 0xFE marks '='.
constexpr std::array<std::uint8_t, 256> make_b64_reverse() {
  std::array<std::uint8_t, 256> t{};
  for (auto& v : t) v = 0xFF;
  for (std::uint8_t i = 0; i < 64; ++i) {
    t[static_cast<unsigned char>(kB64Alphabet[i])] = i;
  }
  t[static_cast<unsigned char>('=')] = 0xFE;
  return t;
}

constexpr auto kB64Reverse = make_b64_reverse();

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string hex_encode(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0F]);
  }
  return out;
}

std::optional<Bytes> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base64_encode(ByteView data) {
  std::string out;
  out.reserve(((data.size() + 2) / 3) * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t n = (data[i] << 16) | (data[i + 1] << 8) | data[i + 2];
    // Base64 is the wire format: its input here is ciphertext or a pseudonym
    // — exactly the bytes the network observer already sees — so the table
    // lookups index public data. (Callers must not feed it raw plaintext.)
    out.push_back(kB64Alphabet[(n >> 18) & 63]);  // PPROX-CT-OK(index): wire bytes
    out.push_back(kB64Alphabet[(n >> 12) & 63]);  // PPROX-CT-OK(index): wire bytes
    out.push_back(kB64Alphabet[(n >> 6) & 63]);   // PPROX-CT-OK(index): wire bytes
    out.push_back(kB64Alphabet[n & 63]);          // PPROX-CT-OK(index): wire bytes
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t n = data[i] << 16;
    out.push_back(kB64Alphabet[(n >> 18) & 63]);  // PPROX-CT-OK(index): wire bytes
    out.push_back(kB64Alphabet[(n >> 12) & 63]);  // PPROX-CT-OK(index): wire bytes
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t n = (data[i] << 16) | (data[i + 1] << 8);
    out.push_back(kB64Alphabet[(n >> 18) & 63]);  // PPROX-CT-OK(index): wire bytes
    out.push_back(kB64Alphabet[(n >> 12) & 63]);  // PPROX-CT-OK(index): wire bytes
    out.push_back(kB64Alphabet[(n >> 6) & 63]);   // PPROX-CT-OK(index): wire bytes
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> base64_decode(std::string_view text) {
  if (text.size() % 4 != 0) return std::nullopt;
  Bytes out;
  out.reserve((text.size() / 4) * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    std::uint8_t v[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      // PPROX-CT-OK(index): decodes adversary-supplied wire text, not secrets.
      v[j] = kB64Reverse[static_cast<unsigned char>(text[i + j])];
      // PPROX-CT-OK(branch): validity of adversary-supplied wire text.
      if (v[j] == 0xFF) return std::nullopt;
      // PPROX-CT-OK(branch): validity of adversary-supplied wire text.
      if (v[j] == 0xFE) {
        // '=' only allowed in the last group, positions 2 and/or 3.
        // PPROX-CT-OK(branch): validity of adversary-supplied wire text.
        if (i + 4 != text.size() || j < 2) return std::nullopt;
        ++pad;
        v[j] = 0;
      } else if (pad > 0) {
        return std::nullopt;  // data after padding
      }
    }
    const std::uint32_t n = (v[0] << 18) | (v[1] << 12) | (v[2] << 6) | v[3];
    out.push_back(static_cast<std::uint8_t>(n >> 16));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>(n >> 8));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n));
  }
  return out;
}

}  // namespace pprox
