// Hot-path discipline annotations (DESIGN.md §11).
//
// These macros mark functions whose reachable call graph must satisfy a
// performance discipline, statically checked by `pprox_lint --hotpath`
// (tools/pprox_lint_hotpath.cpp). The analyzer parses every TU under src/,
// builds a best-effort function-level call graph, propagates effect labels
// from leaf patterns, and reports the full offending call chain when an
// annotated function can reach a forbidden effect:
//
//   PPROX_HOT             per-request path. Forbids reachable heap
//                         allocation (new/malloc, growing containers,
//                         std::string temporaries, std::function capture),
//                         exception throws, and recursion cycles. Locks are
//                         permitted (the paths are lock-light, not
//                         lock-free) — combine with PPROX_NONBLOCKING where
//                         they are not.
//   PPROX_NONBLOCKING     forbids reachable blocking operations: mutex
//                         acquisition, condvar waits, thread joins,
//                         blocking syscalls (read/write/recv/send/poll/
//                         accept/connect), and sleeps.
//   PPROX_ECALL_BOUNDARY  enclave transition surface (ROADMAP item 3: no
//                         allocation inside the enclave boundary). Forbids
//                         reachable heap allocation and blocking
//                         operations.
//
// Placement: immediately before the function declaration or definition
// (`PPROX_HOT void on_readable(...);`). Annotating the declaration in the
// header is enough — the analyzer merges declarations and definitions by
// qualified name — but annotate the definition when there is no separate
// declaration.
//
// Known violations that cannot be fixed yet are ratcheted in
// tools/hotpath_baseline.json; point fixes are justified inline with
//   ... // PPROX-HOTPATH-OK(alloc): buffer reserved at construction
// (the reason after ':' is mandatory; see DESIGN.md §11.4).
//
// The macros deliberately expand to (almost) nothing: PPROX_HOT doubles as
// the compiler's hot-function hint, the other two are markers for the
// analyzer only.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define PPROX_HOT [[gnu::hot]]
#else
#define PPROX_HOT
#endif

#define PPROX_NONBLOCKING
#define PPROX_ECALL_BOUNDARY
