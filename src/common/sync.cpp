// pprox::det — the cooperative deterministic scheduler behind the sync
// abstraction (sync.hpp). Compiled into pprox_common in every build, but the
// whole implementation is gated on PPROX_MODEL_CHECK; normal builds get an
// empty translation unit and pay nothing.
//
// Execution model: managed threads are real OS threads, but exactly one of
// them (or the controller inside explore()) runs at a time, handed a "token"
// through one global mutex/condvar pair. Every sync operation announces
// itself and parks BEFORE it takes effect; the controller inspects all
// pending operations, computes the enabled set, and picks the next thread
// according to the active strategy:
//
//   * DFS — depth-first over the schedule tree with a preemption bound and
//     sleep-set pruning; each finished execution backtracks to the deepest
//     node with an unexplored alternative and replays that prefix.
//   * PCT — randomised priorities with priority-change points (Burckhardt et
//     al.), for state spaces too big to enumerate.
//
// Time is virtual: timed condition-variable waits are nondeterministic
// "timeout fires now" choices that advance the logical clock to the
// deadline, so timer-vs-size races (the ShuffleQueue flush arbitration) are
// explored without sleeping.
#include "common/sync.hpp"

#ifdef PPROX_MODEL_CHECK

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "common/rand.hpp"

namespace pprox::det {

namespace {

constexpr int kController = -1;

enum class TState : std::uint8_t {
  kNew,         // created, waiting to be scheduled for the first time
  kRunning,     // owns the token, executing user code
  kReady,       // parked at an always-enabled op (unlock/notify/atomic/...)
  kWantMutex,   // parked at lock(); enabled iff the mutex is free
  kCvBlocked,   // parked in a cv wait; enabled iff notified or timed out
  kWantJoin,    // parked at join(); enabled iff the target finished
  kFinished,
};

// Signature of a pending operation for trace printing and the independence
// relation. obj2 is the mutex side of a cv wait (a wait touches both).
struct OpSig {
  OpKind kind = OpKind::kYield;
  const ObjRecord* obj = nullptr;
  const ObjRecord* obj2 = nullptr;
  SourceLoc loc;
};

struct ThreadRec {
  int id = 0;
  std::string name;
  TState state = TState::kNew;
  OpSig pending;
  int join_target = -1;
  bool timed = false;
  std::uint64_t deadline_ms = 0;
  bool woke_by_timeout = false;
  // Synthetic object identity for create/join/exit dependence.
  ObjRecord self_obj;
};

struct TraceEntry {
  std::uint64_t step;
  int tid;
  OpSig sig;
  std::string note;
};

struct Node {
  int chosen = -1;
  std::vector<int> alts;          // unexplored non-sleeping alternatives
  std::vector<int> explored;      // choices already fully explored here
  std::vector<int> sleep_entry;   // sleep set on entry to this node
  std::vector<int> enabled_at_entry;
  int prev_tid = -1;              // thread that ran into this node
  int preemptions = 0;            // preemption count after `chosen`
  OpSig sig;                      // op actually executed for `chosen`
};

struct Global {
  std::mutex m;
  std::condition_variable cv;
  int running = kController;
  bool exploring = false;

  std::vector<std::unique_ptr<ThreadRec>> threads;
  std::uint64_t next_obj_id = 1;
  std::uint64_t epoch = 0;  // execution counter for ObjRecord resets
  std::uint64_t now_ms = kVirtualEpochMs;
  std::uint64_t step = 0;
  std::vector<int> schedule;
  std::vector<TraceEntry> trace;

  const Options* opts = nullptr;
  std::vector<Node> stack;  // DFS schedule tree path
  Report report;
  bool truncating = false;  // past max_steps: greedy finish, record nothing

  // PCT state.
  SplitMix64 pct_rng{1};
  std::vector<std::uint64_t> pct_priority;  // by thread id
  std::vector<std::uint64_t> pct_change_points;
  std::uint64_t pct_next_low = 0;  // descending counter for lowered priorities
  std::uint64_t pct_est_len = 256;
};

Global g;

thread_local ThreadRec* t_self = nullptr;

void ensure_obj(ObjRecord* rec) {
  if (rec->epoch != g.epoch) {
    rec->epoch = g.epoch;
    rec->id = g.next_obj_id++;
    rec->owner = -1;
    rec->tokens = 0;
  }
}

const char* state_name(TState s) {
  switch (s) {
    case TState::kNew: return "new";
    case TState::kRunning: return "running";
    case TState::kReady: return "ready";
    case TState::kWantMutex: return "lock-wait";
    case TState::kCvBlocked: return "cv-wait";
    case TState::kWantJoin: return "join-wait";
    case TState::kFinished: return "finished";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

std::string replay_string() {
  std::ostringstream out;
  for (std::size_t i = 0; i < g.schedule.size(); ++i) {
    if (i > 0) out << ',';
    out << g.schedule[i];
  }
  return out.str();
}

// Requires g.m. Prints the numbered trace of the current execution plus the
// schedule needed to replay it, then terminates the process.
[[noreturn]] void fail_locked(const std::string& kind, const std::string& msg) {
  std::fprintf(stderr, "\n=== pprox_check: %s ===\n", kind.c_str());
  std::fprintf(stderr, "model: %s  execution: %llu  step: %llu\n",
               g.opts != nullptr ? g.opts->model_name : "?",
               static_cast<unsigned long long>(g.report.executions + 1),
               static_cast<unsigned long long>(g.step));
  std::fprintf(stderr, "%s\n", msg.c_str());
  std::fprintf(stderr, "--- interleaving trace (%zu steps) ---\n",
               g.trace.size());
  const std::size_t kMaxPrinted = 400;
  const std::size_t start =
      g.trace.size() > kMaxPrinted ? g.trace.size() - kMaxPrinted : 0;
  if (start > 0) std::fprintf(stderr, "  ... %zu earlier steps elided ...\n", start);
  for (std::size_t i = start; i < g.trace.size(); ++i) {
    const TraceEntry& e = g.trace[i];
    const char* name = "?";
    if (e.tid >= 0 && e.tid < static_cast<int>(g.threads.size())) {
      name = g.threads[static_cast<std::size_t>(e.tid)]->name.c_str();
    }
    std::string obj;
    if (e.sig.obj != nullptr) {
      obj = "obj#" + std::to_string(e.sig.obj->id);
      if (e.sig.obj2 != nullptr) {
        obj += "/obj#" + std::to_string(e.sig.obj2->id);
      }
    }
    std::fprintf(stderr, "  #%-5llu T%d(%s) %-14s %-14s %s:%u%s%s\n",
                 static_cast<unsigned long long>(e.step), e.tid, name,
                 op_name(e.sig.kind), obj.c_str(), basename_of(e.sig.loc.file),
                 e.sig.loc.line, e.note.empty() ? "" : "  ", e.note.c_str());
  }
  std::fprintf(stderr, "--- thread states ---\n");
  for (const auto& t : g.threads) {
    std::fprintf(stderr, "  T%d(%s): %s\n", t->id, t->name.c_str(),
                 state_name(t->state));
  }
  std::fprintf(stderr, "--- replay ---\n");
  std::fprintf(stderr, "  pprox_check --model %s --replay %s\n",
               g.opts != nullptr ? g.opts->model_name : "?",
               replay_string().c_str());
  std::fflush(stderr);
  std::_Exit(1);
}

// Hand the token to the controller and wait until it is handed back to us.
// Requires g.m (via lk).
void park(std::unique_lock<std::mutex>& lk) {  // PPROX-HOTPATH-OK(recursion): ghost cycle via the std cv field (see cv_notify); PPROX_MODEL_CHECK-only code
  g.running = kController;
  g.cv.notify_all();
  ThreadRec* self = t_self;
  g.cv.wait(lk, [self] { return g.running == self->id; });
}

// Announce `sig` as this thread's next operation with scheduler state
// `state`, park until the controller grants it, then mark running and record
// the trace entry. The caller applies the op's logical effect after this
// returns (still under lk, still holding the token).
void announce_and_wait(std::unique_lock<std::mutex>& lk, TState state,  // PPROX-HOTPATH-OK(recursion): ghost cycle via the std cv field (see cv_notify); PPROX_MODEL_CHECK-only code
                       const OpSig& sig, const char* note = "") {
  t_self->pending = sig;
  t_self->state = state;
  park(lk);
  t_self->state = TState::kRunning;
  g.trace.push_back(TraceEntry{g.step, t_self->id, sig, note});  // PPROX-HOTPATH-OK(alloc): det-scheduler trace log; compiled only under PPROX_MODEL_CHECK, never in the production proxy
}

bool op_touches(const OpSig& sig, const ObjRecord* obj) {
  return obj != nullptr && (sig.obj == obj || sig.obj2 == obj);
}

// Conservative independence: two pending ops commute iff their object sets
// are disjoint, or both are plain atomic loads of the same object. Null
// objects (yield, time advance) are treated as dependent with everything.
bool independent(const OpSig& a, const OpSig& b) {
  if (a.obj == nullptr || b.obj == nullptr) return false;
  const bool overlap = op_touches(a, b.obj) || op_touches(a, b.obj2) ||
                       op_touches(b, a.obj) || op_touches(b, a.obj2);
  if (!overlap) return true;
  return a.obj == b.obj && a.obj2 == nullptr && b.obj2 == nullptr &&
         a.kind == OpKind::kAtomicLoad && b.kind == OpKind::kAtomicLoad;
}

bool mutex_free(const ObjRecord* mu) { return mu->owner == -1; }

// Is thread `t` runnable right now? Requires g.m.
bool enabled(const ThreadRec& t) {
  switch (t.state) {
    case TState::kNew:
    case TState::kReady:
      return true;
    case TState::kWantMutex:
      return mutex_free(t.pending.obj);
    case TState::kCvBlocked:
      // Wake needs a notify token or an armed timeout, plus the mutex free
      // to reacquire (collapsing wake+relock into one transition: the window
      // between them has no observable effects).
      return (t.pending.obj->tokens > 0 || t.timed) &&
             mutex_free(t.pending.obj2);
    case TState::kWantJoin:
      return g.threads[static_cast<std::size_t>(t.join_target)]->state ==
             TState::kFinished;
    case TState::kRunning:
    case TState::kFinished:
      return false;
  }
  return false;
}

std::vector<int> enabled_set() {
  std::vector<int> out;
  for (const auto& t : g.threads) {
    if (enabled(*t)) out.push_back(t->id);
  }
  return out;
}

bool all_finished() {
  for (const auto& t : g.threads) {
    if (t->state != TState::kFinished) return false;
  }
  return true;
}

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// Pick the next thread by DFS. Creates a new Node past the replayed prefix.
// Requires g.m.
int dfs_pick(const std::vector<int>& en, int prev_tid) {
  const std::size_t depth = static_cast<std::size_t>(g.step);
  if (depth < g.stack.size()) {
    // Replaying the prefix of the previous execution up to the backtrack
    // point. The state must be identical, so the recorded choice is enabled.
    Node& n = g.stack[depth];
    if (!contains(en, n.chosen)) {
      fail_locked("SCHEDULER ERROR",
                  "nondeterministic model: replayed choice T" +
                      std::to_string(n.chosen) +
                      " is not enabled (model must not depend on wall time, "
                      "addresses, or unseeded randomness)");
    }
    n.enabled_at_entry = en;
    n.prev_tid = prev_tid;
    const int prev_preempt =
        depth > 0 ? g.stack[depth - 1].preemptions : 0;
    n.preemptions = prev_preempt + (n.chosen != prev_tid &&
                                            contains(en, prev_tid)
                                        ? 1
                                        : 0);
    return n.chosen;
  }

  const int prev_preempt = depth > 0 ? g.stack[depth - 1].preemptions : 0;
  const bool prev_enabled = contains(en, prev_tid);

  // Candidate order: continue the current thread first (a non-preemptive
  // choice), then the rest by id. When the preemption budget is spent and
  // the current thread can still run, it is the only candidate.
  std::vector<int> candidates;
  if (prev_enabled) candidates.push_back(prev_tid);
  if (!prev_enabled || prev_preempt < g.opts->preemption_bound) {
    for (int tid : en) {
      if (tid != prev_tid) candidates.push_back(tid);
    }
  }

  // Sleep set on entry: threads whose pending op was fully explored at an
  // ancestor and commutes with everything executed since.
  std::vector<int> sleep_entry;
  if (g.opts->sleep_sets && depth > 0) {
    const Node& parent = g.stack[depth - 1];
    std::vector<int> candidates_sleep = parent.sleep_entry;
    for (int tid : parent.explored) candidates_sleep.push_back(tid);
    for (int tid : candidates_sleep) {
      if (tid == parent.chosen || !contains(en, tid)) continue;
      const ThreadRec& t = *g.threads[static_cast<std::size_t>(tid)];
      if (independent(t.pending, parent.sig) && !contains(sleep_entry, tid)) {
        sleep_entry.push_back(tid);
      }
    }
  }

  std::vector<int> awake;
  for (int tid : candidates) {
    if (!contains(sleep_entry, tid)) awake.push_back(tid);
  }
  // All candidates asleep: this state is covered by a sibling branch, but we
  // still have to finish the execution — run the first candidate and record
  // no alternatives so nothing is explored twice from here.
  if (awake.empty()) awake.push_back(candidates.front());

  Node n;
  n.chosen = awake.front();
  n.alts.assign(awake.begin() + 1, awake.end());
  n.sleep_entry = std::move(sleep_entry);
  n.enabled_at_entry = en;
  n.prev_tid = prev_tid;
  n.preemptions =
      prev_preempt + (n.chosen != prev_tid && prev_enabled ? 1 : 0);
  if (!g.truncating) {
    g.stack.push_back(std::move(n));
    return g.stack.back().chosen;
  }
  return n.chosen;
}

// Pick the next thread by PCT: highest priority among enabled, with
// priority-change points lowering the front-runner.
int pct_pick(const std::vector<int>& en) {
  for (std::uint64_t cp : g.pct_change_points) {
    if (cp == g.step && !en.empty()) {
      // Lower the priority of the currently preferred thread.
      int best = en.front();
      for (int tid : en) {
        if (g.pct_priority[static_cast<std::size_t>(tid)] >
            g.pct_priority[static_cast<std::size_t>(best)]) {
          best = tid;
        }
      }
      g.pct_priority[static_cast<std::size_t>(best)] = g.pct_next_low--;
    }
  }
  int best = en.front();
  for (int tid : en) {
    if (g.pct_priority[static_cast<std::size_t>(tid)] >
        g.pct_priority[static_cast<std::size_t>(best)]) {
      best = tid;
    }
  }
  return best;
}

// The controller: schedules managed threads until the execution finishes.
// Returns normally when all threads have exited. Requires the caller to hold
// no locks; runs on the explore() thread.
void run_execution() {
  std::unique_lock<std::mutex> lk(g.m);
  int prev_tid = 0;  // root thread starts each execution
  for (;;) {
    g.cv.wait(lk, [] { return g.running == kController; });
    if (all_finished()) return;

    std::vector<int> en = enabled_set();
    if (en.empty()) {
      fail_locked("DEADLOCK",
                  "no thread is runnable (waiting threads below); a cv wait "
                  "without a matching notify, or a lock cycle");
    }

    if (g.step >= g.opts->max_steps && !g.truncating) {
      g.truncating = true;
      ++g.report.truncated;
    }
    if (g.step >= g.opts->max_steps * 4 + 1024) {
      fail_locked("NONTERMINATION",
                  "execution exceeded 4x max-steps; model has an unbounded "
                  "spin under this schedule");
    }

    int tid;
    const std::size_t depth = static_cast<std::size_t>(g.step);
    if (depth < g.opts->replay.size()) {
      tid = g.opts->replay[depth];
      if (!contains(en, tid)) {
        fail_locked("REPLAY DIVERGENCE",
                    "replayed schedule chose T" + std::to_string(tid) +
                        " which is not enabled at step " +
                        std::to_string(g.step));
      }
    } else if (!g.opts->replay.empty()) {
      // Past the recorded schedule: finish deterministically.
      tid = contains(en, prev_tid) ? prev_tid : en.front();
    } else if (g.opts->mode == Options::Mode::kPct) {
      tid = pct_pick(en);
    } else if (g.truncating) {
      tid = contains(en, prev_tid) ? prev_tid : en.front();
    } else {
      tid = dfs_pick(en, prev_tid);
    }

    ThreadRec& t = *g.threads[static_cast<std::size_t>(tid)];
    // Resolve the wake reason for a cv wait now, while the choice is made:
    // a pending notify token is consumed in preference to a timeout.
    if (t.state == TState::kCvBlocked) {
      ObjRecord* cv_obj = const_cast<ObjRecord*>(t.pending.obj);
      if (cv_obj->tokens > 0) {
        --cv_obj->tokens;
        t.woke_by_timeout = false;
      } else {
        t.woke_by_timeout = true;
        g.now_ms = std::max(g.now_ms, t.deadline_ms);
      }
    }
    if (!g.truncating && depth < g.stack.size()) {
      g.stack[depth].sig = t.pending;
    }
    g.schedule.push_back(tid);
    ++g.step;
    ++g.report.total_steps;
    prev_tid = tid;
    g.running = tid;
    g.cv.notify_all();
  }
}

// After a finished execution, advance the DFS frontier. Returns false when
// the bounded tree is exhausted.
bool dfs_backtrack() {
  while (!g.stack.empty()) {
    Node& n = g.stack.back();
    n.explored.push_back(n.chosen);
    if (!n.alts.empty()) {
      n.chosen = n.alts.front();
      n.alts.erase(n.alts.begin());
      return true;
    }
    g.stack.pop_back();
  }
  return false;
}

void reset_execution_state() {
  g.threads.clear();
  g.next_obj_id = 1;
  ++g.epoch;
  g.now_ms = kVirtualEpochMs;
  g.step = 0;
  g.schedule.clear();
  g.trace.clear();
  g.truncating = false;
}

}  // namespace

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kMutexLock: return "mutex-lock";
    case OpKind::kMutexUnlock: return "mutex-unlock";
    case OpKind::kCvWait: return "cv-wait";
    case OpKind::kCvWake: return "cv-wake";
    case OpKind::kCvNotifyOne: return "cv-notify-one";
    case OpKind::kCvNotifyAll: return "cv-notify-all";
    case OpKind::kAtomicLoad: return "atomic-load";
    case OpKind::kAtomicStore: return "atomic-store";
    case OpKind::kAtomicRmw: return "atomic-rmw";
    case OpKind::kThreadCreate: return "thread-create";
    case OpKind::kThreadStart: return "thread-start";
    case OpKind::kThreadJoin: return "thread-join";
    case OpKind::kThreadExit: return "thread-exit";
    case OpKind::kYield: return "yield";
    case OpKind::kTimeAdvance: return "time-advance";
  }
  return "?";
}

bool managed() noexcept { return t_self != nullptr; }

void mutex_lock(ObjRecord* mu, SourceLoc loc) {
  std::unique_lock<std::mutex> lk(g.m);
  ensure_obj(mu);
  announce_and_wait(lk, TState::kWantMutex,
                    OpSig{OpKind::kMutexLock, mu, nullptr, loc});
  mu->owner = t_self->id;
}

void mutex_unlock(ObjRecord* mu, SourceLoc loc) {
  std::unique_lock<std::mutex> lk(g.m);
  ensure_obj(mu);
  announce_and_wait(lk, TState::kReady,
                    OpSig{OpKind::kMutexUnlock, mu, nullptr, loc});
  mu->owner = -1;
}

bool cv_wait(ObjRecord* cv, ObjRecord* mu, bool timed, std::uint64_t deadline_ms,
             SourceLoc loc) {
  std::unique_lock<std::mutex> lk(g.m);
  ensure_obj(cv);
  ensure_obj(mu);
  // Schedule point 1: the wait entry (atomically releases the mutex).
  announce_and_wait(lk, TState::kReady, OpSig{OpKind::kCvWait, cv, mu, loc});
  mu->owner = -1;
  // Park as a waiter: woken by a notify token or (if timed) a timeout
  // choice, once the mutex is free to reacquire.
  t_self->timed = timed;
  t_self->deadline_ms = deadline_ms;
  t_self->pending = OpSig{OpKind::kCvWake, cv, mu, loc};
  t_self->state = TState::kCvBlocked;
  park(lk);
  t_self->state = TState::kRunning;
  t_self->timed = false;
  const bool notified = !t_self->woke_by_timeout;
  g.trace.push_back(TraceEntry{g.step, t_self->id,
                               OpSig{OpKind::kCvWake, cv, mu, loc},
                               notified ? "notified" : "timeout"});
  mu->owner = t_self->id;
  return notified;
}

void cv_notify(ObjRecord* cv, bool all, SourceLoc loc) {  // PPROX-HOTPATH-OK(recursion): ghost cycle — park() wakes the std::condition_variable field, which name-resolves back to the CondVar wrapper; det code is PPROX_MODEL_CHECK-only
  std::unique_lock<std::mutex> lk(g.m);
  ensure_obj(cv);
  announce_and_wait(
      lk, TState::kReady,
      OpSig{all ? OpKind::kCvNotifyAll : OpKind::kCvNotifyOne, cv, nullptr,
            loc});
  // Count waiters that have not yet been granted a token; notifies with no
  // waiter are lost, exactly like the real primitive.
  std::uint64_t waiters = 0;
  for (const auto& t : g.threads) {
    if (t->state == TState::kCvBlocked && t->pending.obj == cv) ++waiters;
  }
  if (all) {
    cv->tokens = waiters;
  } else if (cv->tokens < waiters) {
    ++cv->tokens;
  }
}

void atomic_op(const ObjRecord* obj, OpKind kind, SourceLoc loc) {
  std::unique_lock<std::mutex> lk(g.m);
  ensure_obj(const_cast<ObjRecord*>(obj));
  announce_and_wait(lk, TState::kReady, OpSig{kind, obj, nullptr, loc});
}

int thread_create(const char* name, SourceLoc loc) {
  std::unique_lock<std::mutex> lk(g.m);
  announce_and_wait(lk, TState::kReady,
                    OpSig{OpKind::kThreadCreate, nullptr, nullptr, loc});
  const int id = static_cast<int>(g.threads.size());
  auto rec = std::make_unique<ThreadRec>();
  rec->id = id;
  rec->name = std::string(name) + "#" + std::to_string(id);
  rec->state = TState::kNew;
  rec->pending = OpSig{OpKind::kThreadStart, &rec->self_obj, nullptr, loc};
  ensure_obj(&rec->self_obj);
  g.threads.push_back(std::move(rec));
  if (g.opts != nullptr && g.opts->mode == Options::Mode::kPct) {
    while (g.pct_priority.size() <= static_cast<std::size_t>(id)) {
      g.pct_priority.push_back(0);
    }
    // High random priority band; change points lower into g.pct_next_low.
    g.pct_priority[static_cast<std::size_t>(id)] =
        (g.pct_rng.next_u64() | (1ull << 32));
  }
  return id;
}

void thread_start(int self_id) {
  std::unique_lock<std::mutex> lk(g.m);
  ThreadRec* self = g.threads[static_cast<std::size_t>(self_id)].get();
  t_self = self;
  g.cv.wait(lk, [self] { return g.running == self->id; });
  self->state = TState::kRunning;
  g.trace.push_back(TraceEntry{g.step, self->id, self->pending, ""});
}

void thread_exit(int self_id) {
  std::unique_lock<std::mutex> lk(g.m);
  ThreadRec* self = g.threads[static_cast<std::size_t>(self_id)].get();
  announce_and_wait(lk, TState::kReady,
                    OpSig{OpKind::kThreadExit, &self->self_obj, nullptr,
                          SourceLoc{"<thread-exit>", 0}});
  self->state = TState::kFinished;
  t_self = nullptr;
  // Hand the token back without parking: this OS thread is done.
  g.running = kController;
  g.cv.notify_all();
}

void thread_join(int child_id, SourceLoc loc) {
  std::unique_lock<std::mutex> lk(g.m);
  ThreadRec* child = g.threads[static_cast<std::size_t>(child_id)].get();
  t_self->join_target = child_id;
  announce_and_wait(lk, TState::kWantJoin,
                    OpSig{OpKind::kThreadJoin, &child->self_obj, nullptr, loc});
  t_self->join_target = -1;
}

void yield(SourceLoc loc) {
  std::unique_lock<std::mutex> lk(g.m);
  announce_and_wait(lk, TState::kReady,
                    OpSig{OpKind::kYield, nullptr, nullptr, loc});
}

std::uint64_t now_ms() noexcept {
  std::unique_lock<std::mutex> lk(g.m);
  return g.now_ms;
}

void advance_time(std::uint64_t delta_ms, SourceLoc loc) {
  std::unique_lock<std::mutex> lk(g.m);
  announce_and_wait(lk, TState::kReady,
                    OpSig{OpKind::kTimeAdvance, nullptr, nullptr, loc},
                    ("+" + std::to_string(delta_ms) + "ms").c_str());
  g.now_ms += delta_ms;
}

std::uint64_t current_step() noexcept {
  std::unique_lock<std::mutex> lk(g.m);
  return g.step;
}

void model_fail(const std::string& message) {
  std::unique_lock<std::mutex> lk(g.m);
  fail_locked("INVARIANT VIOLATION", message);
}

Report explore(const Options& options, const std::function<void()>& body) {
  g.opts = &options;
  g.report = Report{};
  g.stack.clear();
  g.exploring = true;

  const std::uint64_t max_execs =
      options.max_execs > 0
          ? options.max_execs
          : (options.mode == Options::Mode::kPct
                 ? static_cast<std::uint64_t>(options.pct_iters)
                 : ~0ull);

  bool more = true;
  while (more && g.report.executions < max_execs) {
    reset_execution_state();
    if (options.mode == Options::Mode::kPct) {
      g.pct_rng = SplitMix64(options.seed + g.report.executions * 0x9e3779b9ull);
      g.pct_priority.clear();
      g.pct_priority.push_back(g.pct_rng.next_u64() | (1ull << 32));
      g.pct_next_low = 1ull << 31;
      g.pct_change_points.clear();
      for (int i = 0; i + 1 < options.pct_depth; ++i) {
        g.pct_change_points.push_back(
            1 + g.pct_rng.next_u64() % std::max<std::uint64_t>(g.pct_est_len, 2));
      }
    }

    // Root managed thread.
    {
      std::unique_lock<std::mutex> lk(g.m);
      auto rec = std::make_unique<ThreadRec>();
      rec->id = 0;
      rec->name = "main";
      rec->state = TState::kNew;
      rec->pending =
          OpSig{OpKind::kThreadStart, &rec->self_obj, nullptr,
                SourceLoc{"<root>", 0}};
      ensure_obj(&rec->self_obj);
      g.threads.push_back(std::move(rec));
      g.running = kController;
    }
    std::thread root([&body] {
      thread_start(0);
      body();
      thread_exit(0);
    });

    run_execution();
    root.join();

    ++g.report.executions;
    g.pct_est_len = std::max<std::uint64_t>(g.step, 16);

    if (!options.replay.empty()) {
      more = false;  // a replay is a single execution
    } else if (options.mode == Options::Mode::kPct) {
      more = true;  // bounded by max_execs above
    } else {
      more = dfs_backtrack();
    }
  }

  g.report.exhaustive = options.mode == Options::Mode::kDfs &&
                        options.replay.empty() && !more &&
                        g.report.truncated == 0;
  g.exploring = false;
  g.opts = nullptr;
  return g.report;
}

}  // namespace pprox::det

#endif  // PPROX_MODEL_CHECK
