// Minimal leveled logger. Single global sink, safe for concurrent use.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace pprox {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default kWarn so tests/benches stay quiet).
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

/// Streams one log line at `level`; evaluates arguments lazily.
#define PPROX_LOG(level, expr)                              \
  do {                                                      \
    if (static_cast<int>(level) >=                          \
        static_cast<int>(::pprox::log_level())) {           \
      std::ostringstream oss_;                              \
      oss_ << expr;                                         \
      ::pprox::detail::log_line((level), oss_.str());       \
    }                                                       \
  } while (0)

#define LOG_DEBUG(expr) PPROX_LOG(::pprox::LogLevel::kDebug, expr)
#define LOG_INFO(expr) PPROX_LOG(::pprox::LogLevel::kInfo, expr)
#define LOG_WARN(expr) PPROX_LOG(::pprox::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) PPROX_LOG(::pprox::LogLevel::kError, expr)

}  // namespace pprox
