// PPROX-LAYER: vocab
//
// Typed information-flow taint domains for the PProx unlinkability invariant
// (paper §2.3/§6.1, DESIGN.md §8). PProx's security argument is
// architectural: the User Anonymizer must never observe cleartext item
// identifiers and the Item Anonymizer must never observe user identifiers.
// This header turns that argument into types: a cleartext identifier is
// carried in a `Sensitive<T, Domain>` wrapper that cannot be read, mixed
// across domains, or passed to an API of the wrong layer without going
// through one of the explicit, named `declassify_*` functions below. Misuse
// is a compile error (see tests/compile_fail/); every declassify call site
// must carry a `// PPROX-DECLASSIFY:` justification comment, which
// `pprox_lint --flow` audits.
//
// The domain lattice (DESIGN.md §8.2):
//
//       UserDomain        ItemDomain      <- cleartext identifiers (high)
//            \               /
//             PseudonymDomain             <- det_enc / enc output (releasable)
//
// Values only move *down* the lattice, and only through a declassifier whose
// name states the cryptographic transformation that justifies the release.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace pprox::taint {

/// Cleartext user identifiers and user network addresses. Visible to the
/// client library and, inside the enclave, to the UA layer only.
struct UserDomain {
  static constexpr const char* kName = "user";
};

/// Cleartext item identifiers (and IA-destined payloads such as ratings).
/// Visible to the client library and, inside the enclave, to the IA layer.
struct ItemDomain {
  static constexpr const char* kName = "item";
};

/// Pseudonymized or encrypted values: det_enc(id, k_layer) output, OAEP
/// ciphertexts, k_u-sealed response blocks. Safe for any observer by
/// construction — this is the bottom of the lattice and the only domain the
/// LRS may consume.
struct PseudonymDomain {
  static constexpr const char* kName = "pseudonym";
};

template <typename D>
inline constexpr bool is_domain_v = std::is_same_v<D, UserDomain> ||
                                    std::is_same_v<D, ItemDomain> ||
                                    std::is_same_v<D, PseudonymDomain>;

struct UnsafeRawAccess;  // the single, lint-guarded extraction point

/// Zero-cost phantom-typed wrapper: exactly the layout of T, but the value
/// is only reachable through a declassifier (or `wire()` for pseudonyms,
/// which are designed to be observed). Cross-domain construction,
/// assignment, and comparison do not compile.
template <typename T, typename Domain>
class [[nodiscard]] Sensitive {
  static_assert(is_domain_v<Domain>,
                "Domain must be UserDomain, ItemDomain, or PseudonymDomain");

 public:
  using value_type = T;
  using domain_type = Domain;

  Sensitive() = default;
  constexpr explicit Sensitive(T value) : value_(std::move(value)) {}

  Sensitive(const Sensitive&) = default;
  Sensitive(Sensitive&&) noexcept = default;
  Sensitive& operator=(const Sensitive&) = default;
  Sensitive& operator=(Sensitive&&) noexcept = default;

  // Cross-domain flows are compile errors, not runtime checks.
  template <typename U, typename D2>
  Sensitive(const Sensitive<U, D2>&) = delete;
  template <typename U, typename D2>
  Sensitive& operator=(const Sensitive<U, D2>&) = delete;

  /// Same-domain equality only (pseudonym-stability checks and the like);
  /// comparing across domains does not compile.
  friend bool operator==(const Sensitive&, const Sensitive&) = default;

  /// Pseudonyms are the *output* of the privacy transformation and are meant
  /// to travel on the wire and rest in the LRS database; reading one needs
  /// no declassification. Absent for UserDomain/ItemDomain by constraint.
  const T& wire() const
    requires std::is_same_v<Domain, PseudonymDomain>
  {
    return value_;
  }

 private:
  T value_;
  friend struct UnsafeRawAccess;
};

/// The only code with raw access to a Sensitive payload. Every legitimate
/// use lives in this header (the declassifiers and domain-preserving
/// combinators); `pprox_lint --flow` rejects any reference to it elsewhere.
struct UnsafeRawAccess {
  template <typename T, typename D>
  static const T& ref(const Sensitive<T, D>& s) {
    return s.value_;
  }
  template <typename T, typename D>
  static T&& take(Sensitive<T, D>&& s) {
    return std::move(s.value_);
  }
};

template <typename T>
struct IsSensitive : std::false_type {};
template <typename T, typename D>
struct IsSensitive<Sensitive<T, D>> : std::true_type {};
template <typename T>
inline constexpr bool is_sensitive_v = IsSensitive<T>::value;

// Layout guarantees: the wrapper is free. test_taint.cpp asserts the same
// for the concrete instantiations the pipeline uses.
static_assert(sizeof(Sensitive<std::uint64_t, UserDomain>) ==
              sizeof(std::uint64_t));
static_assert(std::is_trivially_copyable_v<Sensitive<std::uint64_t, ItemDomain>>);
static_assert(std::is_trivially_destructible_v<Sensitive<int, PseudonymDomain>>);

// ---------------------------------------------------------------------------
// Domain-preserving combinators — NOT declassification. The result carries
// the same domain as the input, so no justification comment is required.
// ---------------------------------------------------------------------------

/// Applies `f` to the protected value; the result stays in the same domain.
template <typename T, typename D, typename F>
auto map(const Sensitive<T, D>& s, F&& f)
    -> Sensitive<std::invoke_result_t<F, const T&>, D> {
  return Sensitive<std::invoke_result_t<F, const T&>, D>(
      std::forward<F>(f)(UnsafeRawAccess::ref(s)));
}

namespace detail {
template <typename R>
struct ResultValue;
template <typename U>
struct ResultValue<Result<U>> {
  using type = U;
};
}  // namespace detail

/// Like map, for fallible transforms: `f` returns Result<U>; the success
/// value stays in the same domain, errors propagate unwrapped (error
/// messages must never embed the protected value — lint rule of thumb).
template <typename T, typename D, typename F>
auto try_map(const Sensitive<T, D>& s, F&& f) -> Result<
    Sensitive<typename detail::ResultValue<std::invoke_result_t<F, const T&>>::type,
              D>> {
  using U =
      typename detail::ResultValue<std::invoke_result_t<F, const T&>>::type;
  auto result = std::forward<F>(f)(UnsafeRawAccess::ref(s));
  if (!result.ok()) return result.error();
  return Sensitive<U, D>(std::move(result).value());
}

/// Fallible aggregation over a same-domain sequence (e.g. serializing a
/// recommendation list into one response block before sealing it).
template <typename T, typename D, typename F>
auto try_map_all(const std::vector<Sensitive<T, D>>& items, F&& f) -> Result<
    Sensitive<typename detail::ResultValue<
                  std::invoke_result_t<F, const std::vector<T>&>>::type,
              D>> {
  using U = typename detail::ResultValue<
      std::invoke_result_t<F, const std::vector<T>&>>::type;
  std::vector<T> raw;
  raw.reserve(items.size());
  for (const Sensitive<T, D>& s : items) raw.push_back(UnsafeRawAccess::ref(s));
  auto result = std::forward<F>(f)(raw);
  if (!result.ok()) return result.error();
  return Sensitive<U, D>(std::move(result).value());
}

// ---------------------------------------------------------------------------
// Declassification points — the ONLY exits from a sensitive domain. Each
// name states the transformation or trust argument that justifies the
// release; pprox_lint --flow requires a `// PPROX-DECLASSIFY:` comment at
// every call site and DESIGN.md §8.4 enumerates all of them.
// ---------------------------------------------------------------------------

/// PPROX-DECLASSIFY: definition — release into a deterministic encryption
/// under a layer's permanent key kUA/kIA; the observable output is the
/// pseudonym det_enc(id, k), which is the protocol's protection itself.
template <typename T, typename D>
const T& declassify_for_pseudonymization(const Sensitive<T, D>& s) {
  return UnsafeRawAccess::ref(s);
}

/// PPROX-DECLASSIFY: definition — release into a randomized encryption under
/// a key the observer does not hold (a layer public key pkUA/pkIA, or the
/// per-request temporary key k_u). The plaintext never leaves the caller.
template <typename T, typename D>
const T& declassify_for_encryption(const Sensitive<T, D>& s) {
  return UnsafeRawAccess::ref(s);
}

/// PPROX-DECLASSIFY: definition — client-side release of the user's own data
/// back to the calling application (the user is trusted with their own
/// identifiers and recommendations; paper §2.2 trust model).
template <typename T, typename D>
T declassify_for_client(Sensitive<T, D> s) {
  return UnsafeRawAccess::take(std::move(s));
}

/// PPROX-DECLASSIFY: definition — §6.3 IA-side release of item-domain data
/// to the LRS in the clear: the item-pseudonymization opt-out, and event
/// payloads (ratings/weights) the LRS must read. Constrained to ItemDomain
/// so a user identifier can never take this path.
template <typename T>
T declassify_for_lrs(Sensitive<T, ItemDomain> s) {
  return UnsafeRawAccess::take(std::move(s));
}

/// PPROX-DECLASSIFY: definition — test/diagnostic escape hatch. Forbidden in
/// src/ and tools/ by pprox_lint --flow; tests and benches use it to inspect
/// pipeline values.
template <typename T, typename D>
T declassify_for_test(  // pprox-lint: allow(flow-test-declassify): definition
    Sensitive<T, D> s) {
  return UnsafeRawAccess::take(std::move(s));
}

}  // namespace pprox::taint
