// Latency statistics used by the evaluation harness: percentiles and the
// candlestick summaries the paper plots (p25/median/p75, 1.5*IQR whiskers).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pprox {

/// Candlestick summary of a sample distribution, matching the paper's
/// figures: box = [p25, p75], middle line = median, whiskers extend to the
/// most distant sample within 1.5*IQR of the box boundary.
struct Candlestick {
  std::size_t count = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
  double whisker_low = 0;
  double whisker_high = 0;
  double mean = 0;
};

/// Accumulates scalar samples (latencies in milliseconds) and produces
/// summaries. Stores raw samples; experiment sizes here are modest.
class SampleStats {
 public:
  void add(double v) { samples_.push_back(v); }  // PPROX-HOTPATH-OK(alloc): latency-sample vector, amortized doubling off the reply critical path
  void add_all(const std::vector<double>& vs);
  void merge(const SampleStats& other);
  void clear() { samples_.clear(); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Interpolated percentile, q in [0, 100]. Requires a non-empty sample set.
  double percentile(double q) const;

  double mean() const;

  /// Full candlestick summary. Requires a non-empty sample set.
  Candlestick candlestick() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Renders one candlestick as a fixed-width text row, e.g. for bench output.
std::string format_candlestick_row(const std::string& label, const Candlestick& c);

/// Header matching format_candlestick_row columns.
std::string candlestick_header();

}  // namespace pprox
