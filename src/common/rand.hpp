// Deterministic PRNG streams for simulation and tests, and an interface the
// crypto DRBG implements for key/IV generation.
#pragma once

#include <cstdint>
#include <limits>

#include "common/bytes.hpp"

namespace pprox {

/// Interface for sources of random bytes. The crypto module provides a
/// ChaCha20-based DRBG; the simulator uses seeded deterministic streams.
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Fills `out` with random bytes.
  virtual void fill(MutByteView out) = 0;

  /// Returns a uniformly random 64-bit value.
  std::uint64_t next_u64() {
    std::uint8_t buf[8];
    fill(MutByteView(buf, 8));
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | buf[i];
    return v;
  }

  /// Unbiased uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling over the top of the range to avoid modulo bias.
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        (std::numeric_limits<std::uint64_t>::max() % bound);
    std::uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return v % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  Bytes bytes(std::size_t n) {
    Bytes out(n);
    fill(out);
    return out;
  }
};

/// SplitMix64: tiny, fast, well-distributed PRNG. Not cryptographic; used for
/// simulation streams, workload generation, and shuffling *tests* only.
class SplitMix64 final : public RandomSource {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  void fill(MutByteView out) override {
    std::size_t i = 0;
    while (i < out.size()) {
      std::uint64_t v = next();
      for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
        out[i] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
  }

 private:
  std::uint64_t state_;
};

/// Fisher–Yates shuffle driven by any RandomSource.
template <typename Container>
void shuffle(Container& c, RandomSource& rng) {
  for (std::size_t i = c.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    using std::swap;
    swap(c[i - 1], c[j]);
  }
}

}  // namespace pprox
