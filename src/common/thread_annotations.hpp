// Clang thread-safety analysis annotations (-Wthread-safety). On Clang these
// expand to the capability attributes so the compiler statically checks that
// every access to a PPROX_GUARDED_BY(member) happens with its mutex held; on
// GCC and other compilers they expand to nothing. See the "Verification &
// Static Analysis" section of DESIGN.md.
//
// Usage:
//   mutable std::mutex mutex_;
//   std::vector<Item> buffer_ PPROX_GUARDED_BY(mutex_);
//   void flush_locked() PPROX_REQUIRES(mutex_);
//   void flush() PPROX_EXCLUDES(mutex_);
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define PPROX_HAS_THREAD_ATTRIBUTE(x) __has_attribute(x)
#else
#define PPROX_HAS_THREAD_ATTRIBUTE(x) 0
#endif

#if PPROX_HAS_THREAD_ATTRIBUTE(guarded_by)
#define PPROX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PPROX_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Member is only read/written with the named mutex held.
#define PPROX_GUARDED_BY(x) PPROX_THREAD_ANNOTATION(guarded_by(x))

/// Pointee (not the pointer itself) is protected by the named mutex.
#define PPROX_PT_GUARDED_BY(x) PPROX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function must be called with the listed mutexes held.
#define PPROX_REQUIRES(...) \
  PPROX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with the listed mutexes NOT held (it acquires
/// them itself; calling with them held would deadlock or double-lock).
#define PPROX_EXCLUDES(...) \
  PPROX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the listed mutexes and returns with them held.
#define PPROX_ACQUIRE(...) \
  PPROX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed mutexes.
#define PPROX_RELEASE(...) \
  PPROX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (e.g. lock juggling
/// across condition-variable waits). Use sparingly and justify inline.
#define PPROX_NO_THREAD_SAFETY_ANALYSIS \
  PPROX_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Class is a capability (lockable type): pprox::Mutex itself.
#define PPROX_CAPABILITY(x) PPROX_THREAD_ANNOTATION(capability(x))

/// Class is an RAII holder of a capability: pprox::LockGuard/UniqueLock.
#define PPROX_SCOPED_CAPABILITY PPROX_THREAD_ANNOTATION(scoped_lockable)

/// Function attempts the listed mutexes; holds them iff it returned `ret`.
#define PPROX_TRY_ACQUIRE(ret, ...) \
  PPROX_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Returns a reference to the named capability (for lock accessors).
#define PPROX_RETURN_CAPABILITY(x) PPROX_THREAD_ANNOTATION(lock_returned(x))

/// Function acquires the listed capabilities in shared (reader) mode.
#define PPROX_ACQUIRE_SHARED(...) \
  PPROX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases shared (reader) holds of the listed capabilities.
#define PPROX_RELEASE_SHARED(...) \
  PPROX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
