// Clang thread-safety analysis annotations (-Wthread-safety). On Clang these
// expand to the capability attributes so the compiler statically checks that
// every access to a PPROX_GUARDED_BY(member) happens with its mutex held; on
// GCC and other compilers they expand to nothing. See the "Verification &
// Static Analysis" section of DESIGN.md.
//
// Usage:
//   mutable std::mutex mutex_;
//   std::vector<Item> buffer_ PPROX_GUARDED_BY(mutex_);
//   void flush_locked() PPROX_REQUIRES(mutex_);
//   void flush() PPROX_EXCLUDES(mutex_);
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define PPROX_HAS_THREAD_ATTRIBUTE(x) __has_attribute(x)
#else
#define PPROX_HAS_THREAD_ATTRIBUTE(x) 0
#endif

#if PPROX_HAS_THREAD_ATTRIBUTE(guarded_by)
#define PPROX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PPROX_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Member is only read/written with the named mutex held.
#define PPROX_GUARDED_BY(x) PPROX_THREAD_ANNOTATION(guarded_by(x))

/// Pointee (not the pointer itself) is protected by the named mutex.
#define PPROX_PT_GUARDED_BY(x) PPROX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function must be called with the listed mutexes held.
#define PPROX_REQUIRES(...) \
  PPROX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with the listed mutexes NOT held (it acquires
/// them itself; calling with them held would deadlock or double-lock).
#define PPROX_EXCLUDES(...) \
  PPROX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the listed mutexes and returns with them held.
#define PPROX_ACQUIRE(...) \
  PPROX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed mutexes.
#define PPROX_RELEASE(...) \
  PPROX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (e.g. lock juggling
/// across condition-variable waits). Use sparingly and justify inline.
#define PPROX_NO_THREAD_SAFETY_ANALYSIS \
  PPROX_THREAD_ANNOTATION(no_thread_safety_analysis)
