// Basic byte-buffer vocabulary types shared by every module.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pprox {

/// Owning byte buffer. All binary payloads (keys, ciphertexts, packets) use
/// this type; views over it use ByteView.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over contiguous bytes.
using ByteView = std::span<const std::uint8_t>;

/// Non-owning mutable view over contiguous bytes.
using MutByteView = std::span<std::uint8_t>;

/// Copies a string's characters into a fresh byte buffer.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte view as text. The bytes are copied.
inline std::string to_string(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// Constant-time secret comparison lives in crypto/ct.hpp
// (pprox::crypto::ct_equal); tools/pprox_lint.cpp enforces its use.

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Concatenates any number of byte views.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  out.reserve((views.size() + ...));
  (append(out, ByteView(views)), ...);
  return out;
}

/// XORs `src` into `dst` element-wise; sizes must match.
inline void xor_into(MutByteView dst, ByteView src) {
  for (std::size_t i = 0; i < dst.size() && i < src.size(); ++i) dst[i] ^= src[i];
}

/// Best-effort zeroization for key material. The volatile pointer prevents
/// the compiler from eliding the wipe of a dying buffer.
inline void secure_wipe(MutByteView b) {
  volatile std::uint8_t* p = b.data();
  for (std::size_t i = 0; i < b.size(); ++i) p[i] = 0;
}

}  // namespace pprox
