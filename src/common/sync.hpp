// PProx sync-abstraction layer: pprox::Mutex, pprox::CondVar, pprox::Atomic,
// pprox::DetThread, pprox::SteadyClock. All concurrency primitives in src/
// go through these types (enforced by the pprox_lint `raw-sync` rule).
//
// Two build flavours:
//
//  * Normal builds: every type is a thin zero-overhead passthrough to the
//    corresponding <mutex>/<condition_variable>/<atomic>/<thread> primitive.
//    No virtual calls, no extra state, no source-location plumbing.
//
//  * -DPPROX_MODEL_CHECK builds: every acquire/release/wait/notify/atomic op
//    first reports to the pprox::det cooperative scheduler (implemented in
//    sync.cpp), which serialises all managed threads and explores thread
//    interleavings — bounded exhaustive DFS with sleep-set pruning and a
//    preemption bound, or PCT-style randomised priorities. Threads that are
//    not under exploration (det::managed() == false) fall through to the real
//    primitives, so ordinary tests still run in a model-check build.
//
// The deterministic scheduler also virtualises time: under exploration,
// SteadyClock::now() reads a logical clock and every timed condition-variable
// wait becomes a nondeterministic "timeout fires" scheduling choice, so
// timer-vs-size flush races are explored systematically instead of by
// sleeping. See DESIGN.md §9 and tools/pprox_check.cpp for the models.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>

#include "common/thread_annotations.hpp"

// Fatal contract check, active in every build flavour (unlike <cassert> it
// does not vanish under NDEBUG: double-joining a thread or re-locking a held
// UniqueLock is a bug we want release builds to catch too). Exits with a
// plain status code rather than SIGABRT so ctest WILL_FAIL harnesses can
// invert it portably.
#define PPROX_SYNC_ASSERT(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "PPROX_SYNC_ASSERT failed at %s:%d: %s\n",    \
                   __FILE__, __LINE__, msg);                             \
      std::fflush(stderr);                                               \
      std::_Exit(1);                                                     \
    }                                                                    \
  } while (0)

#ifdef PPROX_MODEL_CHECK
#include <source_location>
#endif

namespace pprox {

class CondVar;
class Mutex;
class UniqueLock;

#ifdef PPROX_MODEL_CHECK

namespace det {

// One schedule-relevant operation kind. Used for trace printing and for the
// independence relation behind sleep-set pruning.
enum class OpKind : std::uint8_t {
  kMutexLock,
  kMutexUnlock,
  kCvWait,       // wait entry: atomically releases the mutex and blocks
  kCvWake,       // wait exit: woken (notify or timeout) and reacquires
  kCvNotifyOne,
  kCvNotifyAll,
  kAtomicLoad,
  kAtomicStore,
  kAtomicRmw,
  kThreadCreate,
  kThreadStart,  // first scheduling of a new thread
  kThreadJoin,
  kThreadExit,
  kYield,
  kTimeAdvance,
};

const char* op_name(OpKind kind);

// Trimmed std::source_location: the full object is not trivially copyable
// across the scheduler boundary and we only print file:line.
struct SourceLoc {
  const char* file = "?";
  unsigned line = 0;
};

inline SourceLoc loc_of(const std::source_location& loc) {
  return SourceLoc{loc.file_name(), loc.line()};
}

// Per-object identity shared between the primitive and the scheduler. Lives
// inside Mutex/CondVar/Atomic so no global registry lookup is needed on the
// hot path; the scheduler assigns `id` on first use within an exploration
// and resets it between executions for stable numbering.
struct ObjRecord {
  std::uint64_t id = 0;
  int owner = -1;            // mutex: managed thread id currently holding it
  std::uint64_t tokens = 0;  // condvar: pending notify wake permits
  std::uint64_t epoch = 0;   // execution that last touched this record
};

// --- Managed-thread API (called from the primitives below). ------------

// True iff the calling thread is under the deterministic scheduler. All
// primitives branch on this so unmanaged threads in a model-check build
// (ordinary unit tests, the ctest runner itself) use the real OS paths.
bool managed() noexcept;

void mutex_lock(ObjRecord* mu, SourceLoc loc);
void mutex_unlock(ObjRecord* mu, SourceLoc loc);
// Returns false iff the wait ended by timeout. `deadline_ms` is on the
// virtual clock; ignored when `timed` is false.
bool cv_wait(ObjRecord* cv, ObjRecord* mu, bool timed, std::uint64_t deadline_ms,
             SourceLoc loc);
void cv_notify(ObjRecord* cv, bool all, SourceLoc loc);
void atomic_op(const ObjRecord* obj, OpKind kind, SourceLoc loc);
int thread_create(const char* name, SourceLoc loc);
void thread_start(int self_id);
void thread_exit(int self_id);
void thread_join(int child_id, SourceLoc loc);
void yield(SourceLoc loc = loc_of(std::source_location::current()));

// Virtual clock (milliseconds). Starts at kVirtualEpochMs each execution.
inline constexpr std::uint64_t kVirtualEpochMs = 1'000'000;
std::uint64_t now_ms() noexcept;
// Explicit logical-time step for models (a schedule point like any other).
void advance_time(std::uint64_t delta_ms,
                  SourceLoc loc = loc_of(std::source_location::current()));

// Model-facing invariant check: prints the numbered interleaving trace with
// a replayable schedule and exits non-zero. Callable from any managed
// thread.
[[noreturn]] void model_fail(const std::string& message);
inline void model_check(bool ok, const char* message) {
  if (!ok) model_fail(message);
}
// Monotonic step counter of the current execution (for history recording in
// linearizability checks).
std::uint64_t current_step() noexcept;

// --- Explorer API (called from tools/pprox_check). ----------------------

struct Options {
  enum class Mode { kDfs, kPct };
  Mode mode = Mode::kDfs;
  // DFS: max context switches away from a still-enabled thread per execution.
  int preemption_bound = 2;
  bool sleep_sets = true;
  // Safety caps: an execution longer than max_steps is truncated (counted,
  // reported, treated as a leaf); exploration stops after max_execs
  // executions (0 = unbounded).
  std::uint64_t max_steps = 20000;
  std::uint64_t max_execs = 0;
  // PCT: `pct_iters` random-priority executions with `pct_depth - 1`
  // priority-change points, seeded from `seed`.
  std::uint64_t seed = 1;
  int pct_iters = 500;
  int pct_depth = 3;
  // Replay: follow this exact schedule (chosen managed-thread id per step),
  // then fall back to the default policy once exhausted.
  std::vector<int> replay;
  bool verbose = false;
  const char* model_name = "model";
};

struct Report {
  std::uint64_t executions = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t truncated = 0;  // executions cut off at max_steps
  bool exhaustive = false;      // DFS ran the whole bounded tree
};

// Runs `body` (as managed thread 0) under every explored schedule. On an
// invariant violation or deadlock this does not return: the trace is printed
// and the process exits 1. Not reentrant.
Report explore(const Options& options, const std::function<void()>& body);

}  // namespace det

// ---------------------------------------------------------------------------
// Model-check flavour: primitives report to the scheduler, then perform the
// real operation (uncontended, because the scheduler admits one managed
// thread at a time).
// ---------------------------------------------------------------------------

#define PPROX_SYNC_LOC                      \
  const std::source_location& sloc = std::source_location::current()

class PPROX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  Mutex(Mutex&&) = delete;
  Mutex& operator=(Mutex&&) = delete;

  void lock(PPROX_SYNC_LOC) PPROX_ACQUIRE() {
    if (det::managed()) det::mutex_lock(&rec_, det::loc_of(sloc));
    real_.lock();
  }
  void unlock(PPROX_SYNC_LOC) PPROX_RELEASE() {
    real_.unlock();
    if (det::managed()) det::mutex_unlock(&rec_, det::loc_of(sloc));
  }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex real_;
  det::ObjRecord rec_;
};

#else  // !PPROX_MODEL_CHECK

// ---------------------------------------------------------------------------
// Normal flavour: zero-overhead passthroughs.
// ---------------------------------------------------------------------------

class PPROX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  Mutex(Mutex&&) = delete;
  Mutex& operator=(Mutex&&) = delete;

  void lock() PPROX_ACQUIRE() { real_.lock(); }
  void unlock() PPROX_RELEASE() { real_.unlock(); }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex real_;
};

#endif  // PPROX_MODEL_CHECK

// Reader/writer mutex. In normal builds a std::shared_mutex passthrough;
// under exploration shared acquisitions degrade to exclusive ones — a sound
// over-approximation (readers never conflict, so serialising them removes no
// observable behaviour while keeping the scheduler's mutex protocol simple).
class PPROX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  ~SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;
  SharedMutex(SharedMutex&&) = delete;
  SharedMutex& operator=(SharedMutex&&) = delete;

#ifdef PPROX_MODEL_CHECK
  void lock(PPROX_SYNC_LOC) PPROX_ACQUIRE() {
    if (det::managed()) det::mutex_lock(&rec_, det::loc_of(sloc));
    real_.lock();
  }
  void unlock(PPROX_SYNC_LOC) PPROX_RELEASE() {
    real_.unlock();
    if (det::managed()) det::mutex_unlock(&rec_, det::loc_of(sloc));
  }
  void lock_shared(PPROX_SYNC_LOC) PPROX_ACQUIRE_SHARED() {
    if (det::managed()) {
      det::mutex_lock(&rec_, det::loc_of(sloc));
      real_.lock();  // exclusive under exploration (see class comment)
      return;
    }
    real_.lock_shared();
  }
  void unlock_shared(PPROX_SYNC_LOC) PPROX_RELEASE_SHARED() {
    if (det::managed()) {
      real_.unlock();
      det::mutex_unlock(&rec_, det::loc_of(sloc));
      return;
    }
    real_.unlock_shared();
  }
#else
  void lock() PPROX_ACQUIRE() { real_.lock(); }
  void unlock() PPROX_RELEASE() { real_.unlock(); }
  void lock_shared() PPROX_ACQUIRE_SHARED() { real_.lock_shared(); }
  void unlock_shared() PPROX_RELEASE_SHARED() { real_.unlock_shared(); }
#endif

 private:
  std::shared_mutex real_;
#ifdef PPROX_MODEL_CHECK
  det::ObjRecord rec_;
#endif
};

// RAII lock for a whole scope. Equivalent of std::lock_guard.
class PPROX_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) PPROX_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() PPROX_RELEASE() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

// Relockable RAII lock, usable with CondVar. Equivalent of std::unique_lock.
class PPROX_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) PPROX_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
    owned_ = true;
  }
  ~UniqueLock() PPROX_RELEASE() {
    if (owned_) mutex_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() PPROX_ACQUIRE() {
    PPROX_SYNC_ASSERT(!owned_, "UniqueLock::lock() on a held lock");
    mutex_->lock();
    owned_ = true;
  }
  void unlock() PPROX_RELEASE() {
    PPROX_SYNC_ASSERT(owned_, "UniqueLock::unlock() on a released lock");
    mutex_->unlock();
    owned_ = false;
  }
  bool owns_lock() const noexcept { return owned_; }
  Mutex* mutex() const noexcept PPROX_RETURN_CAPABILITY(*mutex_) {
    return mutex_;
  }

 private:
  Mutex* mutex_;
  bool owned_ = false;
};

// RAII exclusive (writer) lock on a SharedMutex.
class PPROX_SCOPED_CAPABILITY WriteLock {
 public:
  explicit WriteLock(SharedMutex& mutex) PPROX_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriteLock() PPROX_RELEASE() { mutex_.unlock(); }
  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// RAII shared (reader) lock on a SharedMutex.
class PPROX_SCOPED_CAPABILITY ReadLock {
 public:
  explicit ReadLock(SharedMutex& mutex) PPROX_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReadLock() PPROX_RELEASE_SHARED() { mutex_.unlock_shared(); }
  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// Inverse RAII: releases a held UniqueLock for the current scope and
// re-acquires it on exit. The structured replacement for the
// `lock.unlock(); call(); lock.lock();` juggle — pprox_lint --locks flags
// that shape (PPROX-LOCK-MANUAL) because an early return or a throw between
// the bare calls leaves the lock in the wrong state, and the analyzer's
// held-set tracking cannot follow it. Clang's thread-safety analysis cannot
// model an un-then-relock scope either, hence the opt-out annotations.
class ScopedUnlock {
 public:
  explicit ScopedUnlock(UniqueLock& lock) PPROX_NO_THREAD_SAFETY_ANALYSIS
      : lock_(lock) {
    PPROX_SYNC_ASSERT(lock_.owns_lock(), "ScopedUnlock on a released lock");
    lock_.unlock();
  }
  ~ScopedUnlock() PPROX_NO_THREAD_SAFETY_ANALYSIS { lock_.lock(); }
  ScopedUnlock(const ScopedUnlock&) = delete;
  ScopedUnlock& operator=(const ScopedUnlock&) = delete;

 private:
  UniqueLock& lock_;
};

// Condition variable working with UniqueLock over pprox::Mutex.
class CondVar {
 public:
  CondVar() = default;
  ~CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

#ifdef PPROX_MODEL_CHECK

  void notify_one(PPROX_SYNC_LOC) {  // PPROX-HOTPATH-OK(recursion): ghost cycle — det::park wakes a std cv field that name-resolves to this wrapper; real notify never re-enters
    if (det::managed()) {
      det::cv_notify(&rec_, /*all=*/false, det::loc_of(sloc));
      return;
    }
    real_.notify_one();
  }
  void notify_all(PPROX_SYNC_LOC) {  // PPROX-HOTPATH-OK(recursion): ghost cycle — det::park wakes a std cv field that name-resolves to this wrapper; real notify never re-enters
    if (det::managed()) {
      det::cv_notify(&rec_, /*all=*/true, det::loc_of(sloc));
      return;
    }
    real_.notify_all();
  }

  void wait(UniqueLock& lock, PPROX_SYNC_LOC) {
    if (det::managed()) {
      wait_managed(lock, /*timed=*/false, 0, det::loc_of(sloc));
      return;
    }
    real_.wait(lock);
  }

  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate pred, PPROX_SYNC_LOC) {
    while (!pred()) wait(lock, sloc);
  }

  std::cv_status wait_until(UniqueLock& lock,
                            std::chrono::steady_clock::time_point deadline,
                            PPROX_SYNC_LOC) {
    if (det::managed()) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline.time_since_epoch())
                          .count();
      const std::uint64_t deadline_ms = ms < 0 ? 0 : static_cast<std::uint64_t>(ms);
      return wait_managed(lock, /*timed=*/true, deadline_ms, det::loc_of(sloc))
                 ? std::cv_status::no_timeout
                 : std::cv_status::timeout;
    }
    return real_.wait_until(lock, deadline);
  }

  template <typename Predicate>
  bool wait_until(UniqueLock& lock,
                  std::chrono::steady_clock::time_point deadline,
                  Predicate pred, PPROX_SYNC_LOC) {
    while (!pred()) {
      if (wait_until(lock, deadline, sloc) == std::cv_status::timeout) {
        return pred();
      }
    }
    return true;
  }

#else  // !PPROX_MODEL_CHECK

  void notify_one() { real_.notify_one(); }
  void notify_all() { real_.notify_all(); }

  void wait(UniqueLock& lock) { real_.wait(lock); }

  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate pred) {
    while (!pred()) wait(lock);
  }

  std::cv_status wait_until(UniqueLock& lock,
                            std::chrono::steady_clock::time_point deadline) {
    return real_.wait_until(lock, deadline);
  }

  template <typename Predicate>
  bool wait_until(UniqueLock& lock,
                  std::chrono::steady_clock::time_point deadline,
                  Predicate pred) {
    while (!pred()) {
      if (wait_until(lock, deadline) == std::cv_status::timeout) return pred();
    }
    return true;
  }

#endif  // PPROX_MODEL_CHECK

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          std::chrono::duration<Rep, Period> duration) {
    return wait_until(lock, SteadyNow() + std::chrono::duration_cast<
                                              std::chrono::steady_clock::duration>(
                                              duration));
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(UniqueLock& lock, std::chrono::duration<Rep, Period> duration,
                Predicate pred) {
    return wait_until(lock,
                      SteadyNow() + std::chrono::duration_cast<
                                        std::chrono::steady_clock::duration>(
                                        duration),
                      std::move(pred));
  }

 private:
  static std::chrono::steady_clock::time_point SteadyNow();

#ifdef PPROX_MODEL_CHECK
  // Returns true if woken by a notify, false on timeout. Drops the logical
  // and real mutex, parks in the scheduler, reacquires on wake.
  bool wait_managed(UniqueLock& lock, bool timed, std::uint64_t deadline_ms,
                    det::SourceLoc loc) {
    Mutex* mu = lock.mutex();
    mu->real_.unlock();
    const bool notified = det::cv_wait(&rec_, &mu->rec_, timed, deadline_ms, loc);
    mu->real_.lock();
    return notified;
  }
  // condition_variable_any: works with UniqueLock as a BasicLockable, used
  // only on unmanaged threads in model-check builds.
  std::condition_variable_any real_;
  det::ObjRecord rec_;
#else
  friend class Mutex;
  std::condition_variable_any real_;
#endif
};

// Virtualisable monotonic clock. In normal builds this is exactly
// std::chrono::steady_clock; under exploration now() reads the scheduler's
// logical clock so timeouts become schedule choices instead of wall waits.
struct SteadyClock {
  using duration = std::chrono::steady_clock::duration;
  using rep = duration::rep;
  using period = duration::period;
  using time_point = std::chrono::steady_clock::time_point;
  static constexpr bool is_steady = true;

  static time_point now() {
#ifdef PPROX_MODEL_CHECK
    if (det::managed()) {
      return time_point(std::chrono::duration_cast<duration>(
          std::chrono::milliseconds(det::now_ms())));
    }
#endif
    return std::chrono::steady_clock::now();
  }
};

inline std::chrono::steady_clock::time_point CondVar::SteadyNow() {
  return SteadyClock::now();
}

// Sequentially-consistent-by-default atomic. Memory-order arguments are
// accepted and forwarded in normal builds; under exploration every op is a
// schedule point and executes seq-cst (the scheduler serialises managed
// threads anyway, so weaker orders add no behaviours it can see).
template <typename T>
class Atomic {
 public:
  Atomic() noexcept = default;
  constexpr Atomic(T desired) noexcept : real_(desired) {}
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

#ifdef PPROX_MODEL_CHECK
#define PPROX_ATOMIC_POINT(kind)                                      \
  do {                                                                \
    if (det::managed())                                               \
      det::atomic_op(&rec_, det::OpKind::kind, det::loc_of(sloc));    \
  } while (0)
#define PPROX_ATOMIC_ARGS PPROX_SYNC_LOC
#else
#define PPROX_ATOMIC_POINT(kind) \
  do {                           \
  } while (0)
#define PPROX_ATOMIC_ARGS int = 0
#endif

  T load(std::memory_order order = std::memory_order_seq_cst,
         PPROX_ATOMIC_ARGS) const noexcept {
    PPROX_ATOMIC_POINT(kAtomicLoad);
    return real_.load(order);
  }
  void store(T desired, std::memory_order order = std::memory_order_seq_cst,
             PPROX_ATOMIC_ARGS) noexcept {
    PPROX_ATOMIC_POINT(kAtomicStore);
    real_.store(desired, order);
  }
  T exchange(T desired, std::memory_order order = std::memory_order_seq_cst,
             PPROX_ATOMIC_ARGS) noexcept {
    PPROX_ATOMIC_POINT(kAtomicRmw);
    return real_.exchange(desired, order);
  }
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order order = std::memory_order_seq_cst,
                             PPROX_ATOMIC_ARGS) noexcept {
    PPROX_ATOMIC_POINT(kAtomicRmw);
    return real_.compare_exchange_weak(expected, desired, order,
                                       load_order(order));
  }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order order = std::memory_order_seq_cst,
                               PPROX_ATOMIC_ARGS) noexcept {
    PPROX_ATOMIC_POINT(kAtomicRmw);
    return real_.compare_exchange_strong(expected, desired, order,
                                         load_order(order));
  }

  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U> &&
                                        !std::is_same_v<U, bool>>>
  T fetch_add(T arg, std::memory_order order = std::memory_order_seq_cst,
              PPROX_ATOMIC_ARGS) noexcept {
    PPROX_ATOMIC_POINT(kAtomicRmw);
    return real_.fetch_add(arg, order);
  }
  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U> &&
                                        !std::is_same_v<U, bool>>>
  T fetch_sub(T arg, std::memory_order order = std::memory_order_seq_cst,
              PPROX_ATOMIC_ARGS) noexcept {
    PPROX_ATOMIC_POINT(kAtomicRmw);
    return real_.fetch_sub(arg, order);
  }

#undef PPROX_ATOMIC_POINT
#undef PPROX_ATOMIC_ARGS

 private:
  // Failure order for CAS: drop the release part of the success order.
  static constexpr std::memory_order load_order(std::memory_order order) {
    switch (order) {
      case std::memory_order_acq_rel:
        return std::memory_order_acquire;
      case std::memory_order_release:
        return std::memory_order_relaxed;
      default:
        return order;
    }
  }

  std::atomic<T> real_{};
#ifdef PPROX_MODEL_CHECK
  mutable det::ObjRecord rec_;
#endif
};

// Joinable thread with a double-join contract check; under exploration the
// body runs as a managed thread with create/start/join/exit schedule points.
class DetThread {
 public:
  DetThread() = default;

#ifdef PPROX_MODEL_CHECK
  explicit DetThread(std::function<void()> fn, const char* name = "thread",
                     PPROX_SYNC_LOC) {
    if (det::managed()) {
      det_id_ = det::thread_create(name, det::loc_of(sloc));
      const int id = det_id_;
      os_ = std::thread([fn = std::move(fn), id] {
        det::thread_start(id);
        fn();
        det::thread_exit(id);
      });
      return;
    }
    os_ = std::thread(std::move(fn));
  }
#else
  explicit DetThread(std::function<void()> fn, const char* = "thread")
      : os_(std::move(fn)) {}
#endif

  DetThread(DetThread&& other) noexcept = default;
  DetThread& operator=(DetThread&& other) noexcept {
    PPROX_SYNC_ASSERT(!os_.joinable(),
                      "DetThread assigned over a joinable thread");
    os_ = std::move(other.os_);
#ifdef PPROX_MODEL_CHECK
    det_id_ = other.det_id_;
    other.det_id_ = -1;
#endif
    return *this;
  }
  DetThread(const DetThread&) = delete;
  DetThread& operator=(const DetThread&) = delete;

  // Like std::thread, destroying a joinable DetThread terminates: losing a
  // running thread silently is never intended in this codebase.
  ~DetThread() {
    PPROX_SYNC_ASSERT(!os_.joinable(), "DetThread destroyed without join()");
  }

  bool joinable() const noexcept { return os_.joinable(); }

#ifdef PPROX_MODEL_CHECK
  void join(PPROX_SYNC_LOC) {
    PPROX_SYNC_ASSERT(os_.joinable(), "DetThread joined twice");
    if (det_id_ >= 0 && det::managed()) {
      det::thread_join(det_id_, det::loc_of(sloc));
    }
    os_.join();
  }
#else
  void join() {
    PPROX_SYNC_ASSERT(os_.joinable(), "DetThread joined twice");
    os_.join();
  }
#endif

 private:
  std::thread os_;
#ifdef PPROX_MODEL_CHECK
  int det_id_ = -1;
#endif
};

#ifdef PPROX_MODEL_CHECK
#undef PPROX_SYNC_LOC
#endif

}  // namespace pprox
