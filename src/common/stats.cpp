#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace pprox {

void SampleStats::add_all(const std::vector<double>& vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
  sorted_ = false;
}

void SampleStats::merge(const SampleStats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void SampleStats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleStats::percentile(double q) const {
  if (samples_.empty()) throw std::runtime_error("percentile of empty sample set");
  ensure_sorted();
  if (q <= 0) return samples_.front();
  if (q >= 100) return samples_.back();
  const double pos = (q / 100.0) * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleStats::mean() const {
  if (samples_.empty()) return 0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

Candlestick SampleStats::candlestick() const {
  if (samples_.empty()) throw std::runtime_error("candlestick of empty sample set");
  ensure_sorted();
  Candlestick c;
  c.count = samples_.size();
  c.min = samples_.front();
  c.max = samples_.back();
  c.p25 = percentile(25);
  c.median = percentile(50);
  c.p75 = percentile(75);
  c.mean = mean();
  const double iqr = c.p75 - c.p25;
  const double lo_fence = c.p25 - 1.5 * iqr;
  const double hi_fence = c.p75 + 1.5 * iqr;
  // Whiskers: most distant samples still inside the fences.
  c.whisker_low = c.p25;
  for (double v : samples_) {
    if (v >= lo_fence) {
      c.whisker_low = v;
      break;
    }
  }
  c.whisker_high = c.p75;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (*it <= hi_fence) {
      c.whisker_high = *it;
      break;
    }
  }
  return c;
}

std::string candlestick_header() {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-24s %8s %9s %9s %9s %9s %9s %9s",
                "config", "n", "wlo(ms)", "p25(ms)", "med(ms)", "p75(ms)",
                "whi(ms)", "mean(ms)");
  return buf;
}

std::string format_candlestick_row(const std::string& label, const Candlestick& c) {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "%-24s %8zu %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f",
                label.c_str(), c.count, c.whisker_low, c.p25, c.median, c.p75,
                c.whisker_high, c.mean);
  return buf;
}

const char* stats_unused = nullptr;

}  // namespace pprox
