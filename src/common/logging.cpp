#include "common/logging.hpp"

#include <cstdio>

#include "common/result.hpp"
#include "common/sync.hpp"

namespace pprox {
namespace {

Atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
Mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  LockGuard lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

const char* to_string(Error::Code code) {
  switch (code) {
    case Error::Code::kInvalidArgument: return "invalid_argument";
    case Error::Code::kParseError: return "parse_error";
    case Error::Code::kCryptoError: return "crypto_error";
    case Error::Code::kNotFound: return "not_found";
    case Error::Code::kPermissionDenied: return "permission_denied";
    case Error::Code::kUnavailable: return "unavailable";
    case Error::Code::kInternal: return "internal";
  }
  return "unknown";
}

}  // namespace pprox
