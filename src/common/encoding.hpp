// Hex and base64 codecs. PProx transports all encrypted content base64-encoded
// inside JSON payloads (paper §5), so the base64 codec sits on the hot path.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace pprox {

/// Lower-case hex encoding of a byte view.
std::string hex_encode(ByteView data);

/// Decodes lower/upper-case hex. Returns nullopt on odd length or bad digit.
std::optional<Bytes> hex_decode(std::string_view hex);

/// Standard base64 (RFC 4648) with '=' padding.
std::string base64_encode(ByteView data);

/// Decodes standard base64; whitespace is not tolerated. Returns nullopt on
/// malformed input (bad character, bad padding, truncated group).
std::optional<Bytes> base64_decode(std::string_view text);

}  // namespace pprox
