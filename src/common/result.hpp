// Lightweight Result<T> for recoverable errors (malformed packets, bad
// base64, rejected requests). Exceptions are reserved for programming errors
// and unrecoverable conditions, per the error-handling guidelines.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace pprox {

/// Error payload: a stable machine code plus a human-readable message.
struct Error {
  enum class Code {
    kInvalidArgument,
    kParseError,
    kCryptoError,
    kNotFound,
    kPermissionDenied,
    kUnavailable,
    kInternal,
  };

  Code code = Code::kInternal;
  std::string message;

  static Error invalid(std::string msg) { return {Code::kInvalidArgument, std::move(msg)}; }
  static Error parse(std::string msg) { return {Code::kParseError, std::move(msg)}; }
  static Error crypto(std::string msg) { return {Code::kCryptoError, std::move(msg)}; }
  static Error not_found(std::string msg) { return {Code::kNotFound, std::move(msg)}; }
  static Error denied(std::string msg) { return {Code::kPermissionDenied, std::move(msg)}; }
  static Error unavailable(std::string msg) { return {Code::kUnavailable, std::move(msg)}; }
  static Error internal(std::string msg) { return {Code::kInternal, std::move(msg)}; }
};

/// Returns a short name for an error code, for logs and HTTP mapping.
const char* to_string(Error::Code code);

/// Minimal expected-like result. `value()` throws std::runtime_error when
/// called on an error result — use `ok()` first on untrusted paths.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT implicit
  Result(Error error) : data_(std::move(error)) {}      // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(data_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(data_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    if (ok()) throw std::runtime_error("Result: error() on ok result");  // PPROX-HOTPATH-OK(throw): contract-misuse guard — error() after checking ok(); never taken on the fast path
    return std::get<Error>(data_);
  }

  /// Value or a fallback, never throws.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::runtime_error("Result: " + std::get<Error>(data_).message);  // PPROX-HOTPATH-OK(throw): contract-misuse guard — handlers branch on ok() before value(); never taken on the fast path
    }
  }
  std::variant<T, Error> data_;
};

/// Result with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT implicit

  static Status ok_status() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return *error_; }

 private:
  std::optional<Error> error_;
};

}  // namespace pprox
