#include "crypto/gcm.hpp"

#include <cstring>

#include "crypto/accel.hpp"
#include "crypto/ct.hpp"

namespace pprox::crypto {
namespace {

// GCM's CTR core runs the low 32 bits of the counter block big-endian;
// keystream generation is batched kGcmBatch blocks per dispatch call so the
// AES-NI backend can pipeline (mirrors ctr.cpp's kCtrBatch).
constexpr std::size_t kGcmBatch = 8;

void put_u32_be(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
}

std::uint32_t get_u32_be(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | in[i];
  return v;
}

void put_u64_be(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

}  // namespace

void gf128_mul(std::uint8_t x[16], const std::uint8_t y[16]) {  // PPROX-HOTPATH-OK(recursion): dispatch-table member call resolves back by name; ghash kernels never call into gf128_mul
  accel::ghash_ops().gf128_mul(x, y);
}

void gf128_mul_portable(std::uint8_t x[16], const std::uint8_t y[16]) {
  // Bitwise multiply in GF(2^128) with the GCM polynomial
  // x^128 + x^7 + x^2 + x + 1; "rightmost" bit convention per SP 800-38D.
  // Branch-free: both operands derive from the hash key H, so neither the
  // conditional XOR nor the reduction may branch on their bits.
  std::uint8_t z[16] = {};
  std::uint8_t v[16];
  std::memcpy(v, y, 16);
  for (int i = 0; i < 128; ++i) {
    const int byte = i / 8;
    const int bit = 7 - (i % 8);
    const std::uint8_t xbit_mask = ct_mask_u8((x[byte] >> bit) & 1);
    for (int j = 0; j < 16; ++j) z[j] ^= v[j] & xbit_mask;
    // v = v >> 1 (in the bit-reflected representation), with reduction.
    const std::uint8_t lsb_mask = ct_mask_u8(v[15] & 1);
    for (int j = 15; j > 0; --j) {
      v[j] = static_cast<std::uint8_t>((v[j] >> 1) | ((v[j - 1] & 1) << 7));
    }
    v[0] >>= 1;
    v[0] ^= 0xE1 & lsb_mask;  // reduction by the GCM polynomial
  }
  std::memcpy(x, z, 16);
  secure_wipe(MutByteView(v, 16));
}

AesGcm::AesGcm(ByteView key) : aes_(key) {
  std::uint8_t zero[16] = {};
  aes_.encrypt_block(zero);
  std::memcpy(h_.data(), zero, 16);
}

AesGcm::Block AesGcm::ghash(ByteView associated_data, ByteView ciphertext) const {
  Block y{};
  const auto absorb = [this, &y](ByteView data) {
    for (std::size_t offset = 0; offset < data.size(); offset += 16) {
      const std::size_t n = std::min<std::size_t>(16, data.size() - offset);
      for (std::size_t i = 0; i < n; ++i) y[i] ^= data[offset + i];
      gf128_mul(y.data(), h_.data());
    }
  };
  absorb(associated_data);
  absorb(ciphertext);
  // Length block: bit lengths of AAD and ciphertext.
  std::uint8_t lengths[16];
  put_u64_be(lengths, static_cast<std::uint64_t>(associated_data.size()) * 8);
  put_u64_be(lengths + 8, static_cast<std::uint64_t>(ciphertext.size()) * 8);
  for (int i = 0; i < 16; ++i) y[static_cast<std::size_t>(i)] ^= lengths[i];
  gf128_mul(y.data(), h_.data());
  return y;
}

void AesGcm::ctr32_crypt(const Block& j0, ByteView in, Bytes& out) const {
  // First keystream block uses counter j0+1 (j0 itself masks the tag).
  std::uint32_t ctr = get_u32_be(j0.data() + 12);
  std::uint8_t counters[16 * kGcmBatch];
  std::uint8_t keystream[16 * kGcmBatch];
  for (std::size_t b = 0; b < kGcmBatch; ++b) {
    std::memcpy(counters + 16 * b, j0.data(), 12);  // fixed nonce prefix
  }
  const std::size_t base = out.size();
  out.resize(base + in.size());
  for (std::size_t offset = 0; offset < in.size();
       offset += 16 * kGcmBatch) {
    const std::size_t remaining = in.size() - offset;
    const std::size_t nblocks =
        std::min<std::size_t>(kGcmBatch, (remaining + 15) / 16);
    for (std::size_t b = 0; b < nblocks; ++b) {
      put_u32_be(counters + 16 * b + 12, ++ctr);  // wraps mod 2^32 per spec
    }
    aes_.encrypt_blocks(counters, keystream, nblocks);
    const std::size_t n = std::min<std::size_t>(16 * nblocks, remaining);
    for (std::size_t i = 0; i < n; ++i) {
      out[base + offset + i] = in[offset + i] ^ keystream[i];
    }
  }
  secure_wipe(MutByteView(counters, sizeof(counters)));
  secure_wipe(MutByteView(keystream, sizeof(keystream)));
}

Bytes AesGcm::seal(const std::array<std::uint8_t, kNonceSize>& nonce,
                   ByteView plaintext, ByteView associated_data) const {
  // 96-bit nonce: J0 = nonce || 0x00000001.
  Block j0{};
  std::memcpy(j0.data(), nonce.data(), kNonceSize);
  j0[15] = 1;

  Bytes out;
  out.reserve(plaintext.size() + kTagSize);
  ctr32_crypt(j0, plaintext, out);

  Block s = ghash(associated_data, out);
  std::uint8_t tag[16];
  std::memcpy(tag, j0.data(), 16);
  aes_.encrypt_block(tag);  // E_K(J0)
  for (int i = 0; i < 16; ++i) tag[i] ^= s[static_cast<std::size_t>(i)];
  out.insert(out.end(), tag, tag + kTagSize);
  return out;
}

Result<Bytes> AesGcm::open(const std::array<std::uint8_t, kNonceSize>& nonce,
                           ByteView sealed, ByteView associated_data) const {
  if (sealed.size() < kTagSize) return Error::crypto("GCM: message too short");
  const ByteView ciphertext = sealed.first(sealed.size() - kTagSize);
  const ByteView tag = sealed.last(kTagSize);

  Block j0{};
  std::memcpy(j0.data(), nonce.data(), kNonceSize);
  j0[15] = 1;

  Block s = ghash(associated_data, ciphertext);
  std::uint8_t expected[16];
  std::memcpy(expected, j0.data(), 16);
  aes_.encrypt_block(expected);
  for (int i = 0; i < 16; ++i) expected[i] ^= s[static_cast<std::size_t>(i)];
  if (!ct_equal(ByteView(expected, kTagSize), tag)) {
    return Error::crypto("GCM: authentication failed");
  }

  Bytes plaintext;
  plaintext.reserve(ciphertext.size());
  ctr32_crypt(j0, ciphertext, plaintext);
  return plaintext;
}

Bytes AesGcm::seal_with_random_nonce(ByteView plaintext, RandomSource& rng,
                                     ByteView associated_data) const {
  std::array<std::uint8_t, kNonceSize> nonce;
  rng.fill(MutByteView(nonce.data(), nonce.size()));
  Bytes out(nonce.begin(), nonce.end());
  const Bytes sealed = seal(nonce, plaintext, associated_data);
  append(out, sealed);
  return out;
}

Result<Bytes> AesGcm::open_with_nonce(ByteView nonce_and_sealed,
                                      ByteView associated_data) const {
  if (nonce_and_sealed.size() < kNonceSize + kTagSize) {
    return Error::crypto("GCM: message too short");
  }
  std::array<std::uint8_t, kNonceSize> nonce;
  std::memcpy(nonce.data(), nonce_and_sealed.data(), kNonceSize);
  return open(nonce, nonce_and_sealed.subspan(kNonceSize), associated_data);
}

}  // namespace pprox::crypto
