#include "crypto/ctr.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace pprox::crypto {
namespace {

// Keystream is produced kCtrBatch blocks at a time so the dispatch layer's
// encrypt_blocks can keep a full AES-NI pipeline in flight (8 blocks hide
// the AESENC latency); the portable backend just loops. Counter blocks are
// materialized with 64-bit big-endian arithmetic — no per-block memcpy.
constexpr std::size_t kCtrBatch = 8;

inline std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

}  // namespace

void ctr_crypt_inplace(const Aes& cipher, const std::array<std::uint8_t, 16>& iv,
                       MutByteView data) {
  // The counter is a 128-bit big-endian integer: hi:lo with carry from lo.
  std::uint64_t hi = load_be64(iv.data());
  std::uint64_t lo = load_be64(iv.data() + 8);
  std::uint8_t counters[16 * kCtrBatch];
  std::uint8_t keystream[16 * kCtrBatch];
  for (std::size_t offset = 0; offset < data.size();
       offset += 16 * kCtrBatch) {
    const std::size_t remaining = data.size() - offset;
    const std::size_t nblocks =
        std::min<std::size_t>(kCtrBatch, (remaining + 15) / 16);
    for (std::size_t b = 0; b < nblocks; ++b) {
      store_be64(counters + 16 * b, hi);
      store_be64(counters + 16 * b + 8, lo);
      // PPROX-CT-OK(branch): carry on the 128-bit block counter — the
      // counter is IV + block index, public by CTR construction (the IV
      // ships with the ciphertext, or is the fixed zero IV for det mode).
      if (++lo == 0) ++hi;
    }
    cipher.encrypt_blocks(counters, keystream, nblocks);
    const std::size_t n = std::min<std::size_t>(16 * nblocks, remaining);
    for (std::size_t i = 0; i < n; ++i) data[offset + i] ^= keystream[i];
  }
  // Both buffers are key material: the keystream directly, the counter
  // blocks because keystream = E_k(counter) pairs enable known-plaintext
  // reconstruction of the pad positions.
  secure_wipe(MutByteView(counters, sizeof(counters)));
  secure_wipe(MutByteView(keystream, sizeof(keystream)));
}

Bytes ctr_crypt(const Aes& cipher, const std::array<std::uint8_t, 16>& iv,
                ByteView data) {
  Bytes out(data.begin(), data.end());
  ctr_crypt_inplace(cipher, iv, MutByteView(out.data(), out.size()));
  return out;
}

DeterministicCipher::DeterministicCipher(ByteView key) : aes_(key) {
  if (key.size() != 32) {
    throw std::invalid_argument("DeterministicCipher requires an AES-256 key");
  }
}

Bytes DeterministicCipher::encrypt(ByteView plaintext) const {
  static constexpr std::array<std::uint8_t, 16> kZeroIv{};
  return ctr_crypt(aes_, kZeroIv, plaintext);
}

Bytes DeterministicCipher::decrypt(ByteView ciphertext) const {
  return encrypt(ciphertext);  // CTR is an involution for a fixed IV.
}

void DeterministicCipher::keystream(MutByteView out) const {
  static constexpr std::array<std::uint8_t, 16> kZeroIv{};
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  ctr_crypt_inplace(aes_, kZeroIv, out);  // 0 XOR ks = ks
}

RandomIvCipher::RandomIvCipher(ByteView key) : aes_(key) {
  if (key.size() != 32) {
    throw std::invalid_argument("RandomIvCipher requires an AES-256 key");
  }
}

Bytes RandomIvCipher::encrypt(ByteView plaintext, RandomSource& rng) const {
  std::array<std::uint8_t, 16> iv;
  rng.fill(MutByteView(iv.data(), iv.size()));
  Bytes out;
  out.reserve(16 + plaintext.size());
  out.insert(out.end(), iv.begin(), iv.end());
  out.insert(out.end(), plaintext.begin(), plaintext.end());
  ctr_crypt_inplace(aes_, iv, MutByteView(out.data() + 16, plaintext.size()));
  return out;
}

Result<Bytes> RandomIvCipher::decrypt(ByteView iv_and_ciphertext) const {
  if (iv_and_ciphertext.size() < 16) {
    return Error::crypto("ciphertext shorter than IV");
  }
  std::array<std::uint8_t, 16> iv;
  std::memcpy(iv.data(), iv_and_ciphertext.data(), 16);
  return ctr_crypt(aes_, iv, iv_and_ciphertext.subspan(16));
}

}  // namespace pprox::crypto
