#include "crypto/ctr.hpp"

#include <cstring>
#include <stdexcept>

namespace pprox::crypto {
namespace {

// Big-endian increment of the 16-byte counter block.
void increment_counter(std::uint8_t counter[16]) {
  for (int i = 15; i >= 0; --i) {
    if (++counter[i] != 0) break;
  }
}

}  // namespace

Bytes ctr_crypt(const Aes& cipher, const std::array<std::uint8_t, 16>& iv,
                ByteView data) {
  Bytes out(data.begin(), data.end());
  std::uint8_t counter[16];
  std::memcpy(counter, iv.data(), 16);
  std::uint8_t keystream[16];
  for (std::size_t offset = 0; offset < out.size(); offset += 16) {
    std::memcpy(keystream, counter, 16);
    cipher.encrypt_block(keystream);
    const std::size_t n = std::min<std::size_t>(16, out.size() - offset);
    for (std::size_t i = 0; i < n; ++i) out[offset + i] ^= keystream[i];
    increment_counter(counter);
  }
  secure_wipe(MutByteView(keystream, 16));
  return out;
}

DeterministicCipher::DeterministicCipher(ByteView key) : aes_(key) {
  if (key.size() != 32) {
    throw std::invalid_argument("DeterministicCipher requires an AES-256 key");
  }
}

Bytes DeterministicCipher::encrypt(ByteView plaintext) const {
  static constexpr std::array<std::uint8_t, 16> kZeroIv{};
  return ctr_crypt(aes_, kZeroIv, plaintext);
}

Bytes DeterministicCipher::decrypt(ByteView ciphertext) const {
  return encrypt(ciphertext);  // CTR is an involution for a fixed IV.
}

RandomIvCipher::RandomIvCipher(ByteView key) : aes_(key) {
  if (key.size() != 32) {
    throw std::invalid_argument("RandomIvCipher requires an AES-256 key");
  }
}

Bytes RandomIvCipher::encrypt(ByteView plaintext, RandomSource& rng) const {
  std::array<std::uint8_t, 16> iv;
  rng.fill(MutByteView(iv.data(), iv.size()));
  Bytes body = ctr_crypt(aes_, iv, plaintext);
  Bytes out;
  out.reserve(16 + body.size());
  out.insert(out.end(), iv.begin(), iv.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<Bytes> RandomIvCipher::decrypt(ByteView iv_and_ciphertext) const {
  if (iv_and_ciphertext.size() < 16) {
    return Error::crypto("ciphertext shorter than IV");
  }
  std::array<std::uint8_t, 16> iv;
  std::memcpy(iv.data(), iv_and_ciphertext.data(), 16);
  return ctr_crypt(aes_, iv, iv_and_ciphertext.subspan(16));
}

}  // namespace pprox::crypto
