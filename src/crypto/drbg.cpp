#include "crypto/drbg.hpp"

#include <cstring>
#include <random>

#include "crypto/sha256.hpp"

namespace pprox::crypto {
namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

constexpr std::uint64_t kRekeyInterval = 1 << 20;  // 1 MiB between rekeys

}  // namespace

void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::uint8_t out[64]) {
  std::uint32_t state[16] = {
      0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,
      key[0], key[1], key[2], key[3],
      key[4], key[5], key[6], key[7],
      counter, nonce[0], nonce[1], nonce[2]};
  std::uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int i = 0; i < 10; ++i) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = working[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

Drbg::Drbg() {
  std::random_device rd;
  Bytes seed(48);
  for (std::size_t i = 0; i < seed.size(); i += 4) {
    const std::uint32_t v = rd();
    std::memcpy(seed.data() + i, &v, std::min<std::size_t>(4, seed.size() - i));
  }
  reseed(seed);
}

Drbg::Drbg(ByteView seed) { reseed(seed); }

void Drbg::reseed(ByteView seed) {
  LockGuard lock(mutex_);
  // key' = SHA256(key || seed): mixes new entropy without discarding old.
  Bytes material(reinterpret_cast<const std::uint8_t*>(key_.data()),
                 reinterpret_cast<const std::uint8_t*>(key_.data()) + 32);
  append(material, seed);
  const auto digest = Sha256::digest(material);
  std::memcpy(key_.data(), digest.data(), 32);
  counter_ = 0;
  block_pos_ = 64;
  bytes_since_rekey_ = 0;
}

void Drbg::refill_locked() {
  chacha20_block(key_, counter_++, nonce_, block_.data());
  block_pos_ = 0;
}

void Drbg::rekey_locked() {
  // Fast key erasure: draw a fresh key from the keystream so earlier output
  // cannot be reconstructed from a later state compromise.
  std::uint8_t fresh[64];
  chacha20_block(key_, counter_++, nonce_, fresh);
  std::memcpy(key_.data(), fresh, 32);
  counter_ = 0;
  ++nonce_[0];
  bytes_since_rekey_ = 0;
  secure_wipe(MutByteView(fresh, sizeof(fresh)));
}

void Drbg::fill(MutByteView out) {
  LockGuard lock(mutex_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (block_pos_ == 64) {
      if (bytes_since_rekey_ >= kRekeyInterval) rekey_locked();
      refill_locked();
    }
    out[i] = block_[block_pos_++];
    ++bytes_since_rekey_;
  }
}

Drbg& global_drbg() {
  static Drbg drbg;
  return drbg;
}

}  // namespace pprox::crypto
