// PPROX-LAYER: shared
//
// x86 hardware kernels for the crypto dispatch layer: AES-NI round-function
// pipelines and a CLMUL-based GF(2^128) multiply for GHASH. This is the
// only translation unit (besides the CPUID probe) allowed to include
// intrinsics headers — pprox_lint's `intrinsics` rule enforces containment,
// and the CMake arch gate keeps non-x86 builds from ever seeing this file.
//
// Correctness contract: every kernel is bit-identical to the portable
// reference (tests/test_accel.cpp runs the differential suite across both
// backends). Constant-time status: AESENC/AESDEC and PCLMULQDQ have
// data-independent latency on every microarchitecture that implements them,
// so unlike the table-based reference these paths are free of secret-
// indexed memory accesses (DESIGN.md §10).
//
// Dispatch guarantees these functions only execute when CPUID reports
// AES-NI + PCLMULQDQ + SSSE3; the file is compiled with -maes -mpclmul
// -mssse3 (per-source flags, not global, so the rest of the library stays
// runnable on any x86-64).
#if defined(__x86_64__) || defined(__i386__)

#include <cstddef>
#include <cstdint>

#include <immintrin.h>  // pprox-lint: allow(intrinsics): this TU is the hardware-kernel container
#include <wmmintrin.h>  // pprox-lint: allow(intrinsics): this TU is the hardware-kernel container

#include "crypto/accel.hpp"

namespace pprox::crypto::accel {
namespace {

// ---------------------------------------------------------------------------
// AES-NI. The standard FIPS 197 round-key schedule from aes.cpp loads
// directly: AESENC expects exactly those keys for rounds 1..N-1 and
// AESENCLAST for the final round.
// ---------------------------------------------------------------------------

constexpr int kMaxRounds = 14;  // AES-256

inline void load_keys(const std::uint8_t* rk, int rounds, __m128i keys[15]) {
  for (int i = 0; i <= rounds; ++i) {
    keys[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(rk + 16 * static_cast<std::size_t>(i)));
  }
}

/// Encrypts W independent blocks in flight. The W-wide interleave hides the
/// AESENC latency (4-7 cycles) behind its throughput (1-2/cycle): with 8
/// blocks in the pipeline every port stays busy.
template <int W>
inline void enc_lane(const __m128i keys[15], int rounds, const std::uint8_t* in,
                     std::uint8_t* out) {
  __m128i b[W];
  for (int i = 0; i < W; ++i) {
    b[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
    b[i] = _mm_xor_si128(b[i], keys[0]);
  }
  for (int r = 1; r < rounds; ++r) {
    for (int i = 0; i < W; ++i) b[i] = _mm_aesenc_si128(b[i], keys[r]);
  }
  for (int i = 0; i < W; ++i) {
    b[i] = _mm_aesenclast_si128(b[i], keys[rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), b[i]);
  }
}

template <int W>
inline void dec_lane(const __m128i dkeys[15], int rounds, const std::uint8_t* in,
                     std::uint8_t* out) {
  __m128i b[W];
  for (int i = 0; i < W; ++i) {
    b[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
    b[i] = _mm_xor_si128(b[i], dkeys[0]);
  }
  for (int r = 1; r < rounds; ++r) {
    for (int i = 0; i < W; ++i) b[i] = _mm_aesdec_si128(b[i], dkeys[r]);
  }
  for (int i = 0; i < W; ++i) {
    b[i] = _mm_aesdeclast_si128(b[i], dkeys[rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), b[i]);
  }
}

void aesni_encrypt_blocks(const std::uint8_t* rk, int rounds,
                          const std::uint8_t* in, std::uint8_t* out,
                          std::size_t nblocks) {
  __m128i keys[kMaxRounds + 1];
  load_keys(rk, rounds, keys);
  while (nblocks >= 8) {
    enc_lane<8>(keys, rounds, in, out);
    in += 128;
    out += 128;
    nblocks -= 8;
  }
  if (nblocks >= 4) {
    enc_lane<4>(keys, rounds, in, out);
    in += 64;
    out += 64;
    nblocks -= 4;
  }
  while (nblocks > 0) {
    enc_lane<1>(keys, rounds, in, out);
    in += 16;
    out += 16;
    --nblocks;
  }
}

void aesni_decrypt_blocks(const std::uint8_t* rk, int rounds,
                          const std::uint8_t* in, std::uint8_t* out,
                          std::size_t nblocks) {
  // AESDEC implements the equivalent inverse cipher: middle round keys must
  // pass through InvMixColumns (AESIMC), and the schedule reverses.
  __m128i keys[kMaxRounds + 1];
  load_keys(rk, rounds, keys);
  __m128i dkeys[kMaxRounds + 1];
  dkeys[0] = keys[rounds];
  for (int r = 1; r < rounds; ++r) {
    dkeys[r] = _mm_aesimc_si128(keys[rounds - r]);
  }
  dkeys[rounds] = keys[0];
  while (nblocks >= 8) {
    dec_lane<8>(dkeys, rounds, in, out);
    in += 128;
    out += 128;
    nblocks -= 8;
  }
  if (nblocks >= 4) {
    dec_lane<4>(dkeys, rounds, in, out);
    in += 64;
    out += 64;
    nblocks -= 4;
  }
  while (nblocks > 0) {
    dec_lane<1>(dkeys, rounds, in, out);
    in += 16;
    out += 16;
    --nblocks;
  }
}

// ---------------------------------------------------------------------------
// CLMUL GHASH. GCM treats blocks as bit-reflected polynomials over
// GF(2^128); loading through a byte swap gives registers whose integer bit
// m holds coefficient 127-m (a full 128-bit reversal). The carry-less
// product of two reversed operands is the reversed 255-bit product shifted
// down by one (rev(a) * rev(b) = rev255(a*b)), so shifting the 256-bit
// product left once yields rev256(a*b), and the whole reduction can then be
// done with mirrored shifts:
//
//   coefficient-order u << j  ==  reversed-register u >> j  (and vice versa)
//
// Reduction by p(x) = x^128 + x^7 + x^2 + x + 1 folds the high half twice:
//   r = d_lo ^ W ^ (V ^ V<<1 ^ V<<2 ^ V<<7)
//     W = d_hi ^ d_hi<<1 ^ d_hi<<2 ^ d_hi<<7   (truncated to 128 bits)
//     V = d_hi>>127 ^ d_hi>>126 ^ d_hi>>121    (the <=7 overflow bits)
// with every shift mirrored in the reversed registers below. Verified
// bit-identical against the portable bitwise multiply by test_accel.
// ---------------------------------------------------------------------------

inline __m128i byte_swap(__m128i v) {
  const __m128i rev =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  return _mm_shuffle_epi8(v, rev);
}

/// 128-bit logical right shift by s (1 <= s <= 63) across both lanes.
template <int S>
inline __m128i shr128(__m128i v) {
  return _mm_or_si128(_mm_srli_epi64(v, S),
                      _mm_slli_epi64(_mm_srli_si128(v, 8), 64 - S));
}

/// 128-bit logical left shift by s (64 <= s <= 127).
template <int S>
inline __m128i shl128_wide(__m128i v) {
  return _mm_slli_epi64(_mm_slli_si128(v, 8), S - 64);
}

void clmul_gf128_mul(std::uint8_t x[16], const std::uint8_t h[16]) {
  const __m128i a =
      byte_swap(_mm_loadu_si128(reinterpret_cast<const __m128i*>(x)));
  const __m128i b =
      byte_swap(_mm_loadu_si128(reinterpret_cast<const __m128i*>(h)));

  // Schoolbook 128x128 carry-less multiply -> 255-bit product [hi:lo].
  const __m128i t0 = _mm_clmulepi64_si128(a, b, 0x00);
  const __m128i t1 = _mm_xor_si128(_mm_clmulepi64_si128(a, b, 0x10),
                                   _mm_clmulepi64_si128(a, b, 0x01));
  const __m128i t2 = _mm_clmulepi64_si128(a, b, 0x11);
  __m128i lo = _mm_xor_si128(t0, _mm_slli_si128(t1, 8));
  __m128i hi = _mm_xor_si128(t2, _mm_srli_si128(t1, 8));

  // Shift [hi:lo] left by one bit: the reflection compensation.
  const __m128i lo_carry = _mm_srli_epi64(lo, 63);
  const __m128i hi_carry = _mm_srli_epi64(hi, 63);
  lo = _mm_or_si128(_mm_slli_epi64(lo, 1), _mm_slli_si128(lo_carry, 8));
  hi = _mm_or_si128(
      _mm_or_si128(_mm_slli_epi64(hi, 1), _mm_slli_si128(hi_carry, 8)),
      _mm_srli_si128(lo_carry, 8));

  // Now hi = rev128(product coeffs 0..127), lo = rev128(coeffs 128..255).
  // Fold the high coefficients (lo register) into the result with the
  // mirrored shifts described above.
  const __m128i w = _mm_xor_si128(
      _mm_xor_si128(lo, shr128<1>(lo)),
      _mm_xor_si128(shr128<2>(lo), shr128<7>(lo)));
  const __m128i v = _mm_xor_si128(
      _mm_xor_si128(shl128_wide<127>(lo), shl128_wide<126>(lo)),
      shl128_wide<121>(lo));
  const __m128i v_fold = _mm_xor_si128(_mm_xor_si128(v, shr128<1>(v)),
                                       _mm_xor_si128(shr128<2>(v), shr128<7>(v)));
  const __m128i r = _mm_xor_si128(hi, _mm_xor_si128(w, v_fold));

  _mm_storeu_si128(reinterpret_cast<__m128i*>(x), byte_swap(r));
}

constexpr AesOps kX86Aes = {
    "aes-ni",
    /*constant_time=*/true,
    aesni_encrypt_blocks,
    aesni_decrypt_blocks,
};

constexpr GhashOps kX86Ghash = {
    "ghash-clmul",
    /*constant_time=*/true,
    clmul_gf128_mul,
};

}  // namespace

const AesOps& x86_aes_ops() { return kX86Aes; }

const GhashOps& x86_ghash_ops() { return kX86Ghash; }

}  // namespace pprox::crypto::accel

#endif  // x86
