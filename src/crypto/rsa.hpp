// RSA with PKCS#1 v1.5 and OAEP (SHA-256) encryption padding. The paper's
// proxy uses RSA for the client→layer asymmetric channel (enc(u, pkUA),
// enc(i, pkIA), enc(k_u, pkIA)); decryption uses CRT for speed.
#pragma once

#include <cstddef>

#include "common/bytes.hpp"
#include "common/rand.hpp"
#include "common/result.hpp"
#include "crypto/bigint.hpp"

namespace pprox::crypto {

/// RSA public key (n, e). Copyable; distributing it is the point.
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  /// SHA-256 fingerprint of the encoded key, for attestation binding.
  Bytes fingerprint() const;
};

/// RSA private key with CRT components.
struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  BigInt p;
  BigInt q;
  BigInt d_p;    // d mod (p-1)
  BigInt d_q;    // d mod (q-1)
  BigInt q_inv;  // q^-1 mod p

  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
  RsaPublicKey public_key() const { return {n, e}; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generates a fresh key pair with a modulus of `bits` bits (e = 65537).
/// Tests use 1024 for speed; deployments should use >= 2048.
RsaKeyPair rsa_generate(std::size_t bits, RandomSource& rng);

/// Raw RSA operations (textbook; exposed for tests and signatures).
BigInt rsa_public_op(const RsaPublicKey& key, const BigInt& m);
BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& c);

/// PKCS#1 v1.5 type-2 encryption. Plaintext must fit: len <= k - 11.
Result<Bytes> rsa_encrypt_pkcs1(const RsaPublicKey& key, ByteView plaintext,
                                RandomSource& rng);
Result<Bytes> rsa_decrypt_pkcs1(const RsaPrivateKey& key, ByteView ciphertext);

/// RSAES-OAEP with SHA-256 and an empty label. len <= k - 2*32 - 2.
Result<Bytes> rsa_encrypt_oaep(const RsaPublicKey& key, ByteView plaintext,
                               RandomSource& rng);
Result<Bytes> rsa_decrypt_oaep(const RsaPrivateKey& key, ByteView ciphertext);

/// RSASSA with SHA-256 (PKCS#1 v1.5 DigestInfo). Used by the simulated
/// attestation authority to sign enclave quotes.
Bytes rsa_sign_sha256(const RsaPrivateKey& key, ByteView message);
bool rsa_verify_sha256(const RsaPublicKey& key, ByteView message,
                       ByteView signature);

/// MGF1-SHA256 mask generation (RFC 8017 B.2.1); exposed for tests.
Bytes mgf1_sha256(ByteView seed, std::size_t length);

/// Constant-time padding removal over a decrypted message block `em`
/// (exactly modulus_bytes long), exposed for tests and the dudect harness
/// (tools/pprox_ct_bench) so timing can be measured without modexp noise.
/// The separator scan and every validity check are branch-free; only the
/// single aggregated accept/reject bit is revealed (ct_reveal), which is
/// what the Result-returning API exposes to the caller anyway.
Result<Bytes> rsa_unpad_pkcs1(ByteView em);
/// OAEP counterpart: unmasks seed/DB with MGF1, then checks lHash and scans
/// for the 0x01 separator branch-free. Same reveal contract as above.
Result<Bytes> rsa_unpad_oaep(ByteView em);

}  // namespace pprox::crypto
