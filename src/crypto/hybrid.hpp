// Hybrid public-key encryption: RSA-OAEP wraps a fresh AES-256 key, AES-CTR
// (random IV) carries the body. Used to provision layer secrets into
// attested enclaves, where the payload exceeds one RSA block.
#pragma once

#include "common/bytes.hpp"
#include "common/rand.hpp"
#include "common/result.hpp"
#include "crypto/rsa.hpp"

namespace pprox::crypto {

/// Output layout: [2-byte big-endian wrapped-key length][wrapped key][IV || body].
Result<Bytes> hybrid_encrypt(const RsaPublicKey& key, ByteView plaintext,
                             RandomSource& rng);

Result<Bytes> hybrid_decrypt(const RsaPrivateKey& key, ByteView blob);

}  // namespace pprox::crypto
