#include "crypto/bigint.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/accel.hpp"

namespace pprox::crypto {
namespace {

constexpr std::uint64_t kBase = 1ULL << 32;

// ---------------------------------------------------------------------------
// Montgomery arithmetic over 32-bit limbs (CIOS form). Replaces the
// divmod-based reduction in the modexp hot loop: one word-inverse and one
// R^2 divmod up front, then every modular multiplication is s^2+s word
// multiply-accumulates with no division at all. For RSA-CRT this is the
// per-request proxy cost (bench_crypto's BM_RsaOaepDecrypt).
// ---------------------------------------------------------------------------

/// -n^{-1} mod 2^32 for odd n, by Newton iteration (bit count doubles per
/// step: 3 -> 6 -> 12 -> 24 -> 48 >= 32).
std::uint32_t mont_n0(std::uint32_t n) {
  std::uint32_t x = n;  // n * n == 1 (mod 8) for odd n
  for (int i = 0; i < 4; ++i) x *= 2u - n * x;
  return 0u - x;
}

/// One CIOS Montgomery multiplication: t <- a * b * R^{-1} mod n, where all
/// operands are `s` limbs, R = 2^(32s). `t` needs s+2 limbs of scratch; the
/// result (< n after the conditional subtract) lands in t[0..s-1].
void mont_mul(const std::uint32_t* a, const std::uint32_t* b,
              const std::uint32_t* n, std::uint32_t n0, std::size_t s,
              std::uint32_t* t) {
  std::fill(t, t + s + 2, 0u);
  for (std::size_t i = 0; i < s; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < s; ++j) {
      const std::uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[s] + carry;
    t[s] = static_cast<std::uint32_t>(cur);
    t[s + 1] = static_cast<std::uint32_t>(t[s + 1] + (cur >> 32));
    // t = (t + m * n) / 2^32  with m chosen so the low limb cancels
    const std::uint32_t m = t[0] * n0;
    cur = t[0] + static_cast<std::uint64_t>(m) * n[0];
    carry = cur >> 32;
    for (std::size_t j = 1; j < s; ++j) {
      cur = t[j] + static_cast<std::uint64_t>(m) * n[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = t[s] + carry;
    t[s - 1] = static_cast<std::uint32_t>(cur);
    t[s] = static_cast<std::uint32_t>(t[s + 1] + (cur >> 32));
    t[s + 1] = 0;
  }
  // CIOS guarantees t < 2n here; one conditional subtract normalizes. The
  // limbs are secret (intermediate modexp state), so both the comparison and
  // the subtract must be branch-free: a compare-with-early-break or a
  // `diff < 0` borrow branch keys instruction counts to limb values, which
  // is exactly the class of leak pprox_lint --ct rejects (DESIGN.md §13.4).
  // Pass 1 derives the would-be borrow of t - n without storing it.
  std::uint32_t bw = 0;
  for (std::size_t i = 0; i < s; ++i) {
    const std::uint64_t d =
        static_cast<std::uint64_t>(t[i]) - n[i] - bw;
    bw = static_cast<std::uint32_t>(d >> 32) & 1u;
  }
  // t >= n iff the top scratch limb is set or the subtract doesn't borrow.
  const std::uint32_t ts_nz = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(t[s]) + 0xFFFFFFFFull) >> 32);
  const std::uint32_t mask = 0u - (ts_nz | (bw ^ 1u));
  // Pass 2 subtracts n & mask — all limbs or none, same work either way.
  std::uint32_t bw2 = 0;
  for (std::size_t i = 0; i < s; ++i) {
    const std::uint64_t d =
        static_cast<std::uint64_t>(t[i]) - (n[i] & mask) - bw2;
    t[i] = static_cast<std::uint32_t>(d);
    bw2 = static_cast<std::uint32_t>(d >> 32) & 1u;
  }
  t[s] = 0;  // any overflow limb was consumed by the subtract's borrow
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_bytes_be(ByteView bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // byte i (big-endian) contributes to bit position 8*(size-1-i)
    const std::size_t bit = 8 * (bytes.size() - 1 - i);
    out.limbs_[bit / 32] |= static_cast<std::uint32_t>(bytes[i]) << (bit % 32);
  }
  out.normalize();
  return out;
}

BigInt BigInt::from_hex(std::string_view hex) {
  BigInt out;
  out.limbs_.assign((hex.size() * 4 + 31) / 32, 0);
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const int d = hex_digit(hex[hex.size() - 1 - i]);
    if (d < 0) throw std::invalid_argument("BigInt::from_hex: bad digit");
    const std::size_t bit = 4 * i;
    out.limbs_[bit / 32] |= static_cast<std::uint32_t>(d) << (bit % 32);
  }
  out.normalize();
  return out;
}

Bytes BigInt::to_bytes_be(std::size_t width) const {
  const std::size_t min_len = (bit_length() + 7) / 8;
  const std::size_t len = width == 0 ? std::max<std::size_t>(min_len, 1) : width;
  Bytes out(len, 0);
  for (std::size_t i = 0; i < len && i < 4 * limbs_.size(); ++i) {
    const std::uint32_t limb = limbs_[i / 4];
    out[len - 1 - i] = static_cast<std::uint8_t>(limb >> (8 * (i % 4)));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(digits[(limbs_[i] >> shift) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = 32 * (limbs_.size() - 1);
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigInt::compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (*this < o) throw std::underflow_error("BigInt subtraction underflow");
  BigInt out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= o.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const std::uint64_t t = a * o.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(t);
      carry = t >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry) {
      const std::uint64_t t = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(t);
      carry = t >> 32;
      ++k;
    }
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.normalize();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.normalize();
  return out;
}

BigInt::DivMod BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt division by zero");
  if (*this < divisor) return {BigInt(), *this};

  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.assign(limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {q, BigInt(rem)};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set, guaranteeing quotient digit estimates are off by at most 2.
  const std::size_t n = divisor.limbs_.size();
  int shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  const BigInt u_norm = *this << static_cast<std::size_t>(shift);
  const BigInt v_norm = divisor << static_cast<std::size_t>(shift);
  std::vector<std::uint32_t> u = u_norm.limbs_;
  u.push_back(0);  // virtual top limb u[m+n-1]; keeps every window in range
  const std::vector<std::uint32_t>& v = v_norm.limbs_;
  const std::size_t m = u.size() - n;  // number of quotient digits (j = m-1..0)

  BigInt q;
  q.limbs_.assign(m, 0);
  const std::uint64_t v_top = v[n - 1];
  const std::uint64_t v_next = v[n - 2];

  for (std::size_t j = m; j-- > 0;) {
    // Estimate qhat from the top two limbs of the current remainder window.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = numerator / v_top;
    std::uint64_t rhat = numerator % v_top;
    while (qhat >= kBase ||
           qhat * v_next > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >= kBase) break;
    }

    // Multiply-subtract: u[j..j+n] -= qhat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(u[i + j]) -
                       static_cast<std::int64_t>(p & 0xFFFFFFFFu) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<std::uint32_t>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(u[j + n]) -
                     static_cast<std::int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large; add v back once.
      t += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + carry2;
        u[i + j] = static_cast<std::uint32_t>(s);
        carry2 = s >> 32;
      }
      t += static_cast<std::int64_t>(carry2);
      t &= 0xFFFFFFFF;
    }
    u[j + n] = static_cast<std::uint32_t>(t);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  q.normalize();
  BigInt r;
  r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  r.normalize();
  r = r >> static_cast<std::size_t>(shift);
  return {q, r};
}

BigInt BigInt::modexp(const BigInt& exponent, const BigInt& modulus) const {
  if (modulus.is_zero()) throw std::domain_error("modexp: zero modulus");
  if (modulus.is_odd() && accel::montgomery_active()) {
    return modexp_montgomery(exponent, modulus);
  }
  return modexp_divmod(exponent, modulus);
}

BigInt BigInt::modexp_divmod(const BigInt& exponent, const BigInt& modulus) const {
  if (modulus.is_zero()) throw std::domain_error("modexp: zero modulus");
  BigInt result(1);
  BigInt base = *this % modulus;
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = (result * base) % modulus;
    base = (base * base) % modulus;
  }
  return result % modulus;
}

BigInt BigInt::modexp_montgomery(const BigInt& exponent,
                                 const BigInt& modulus) const {
  if (modulus.is_zero()) throw std::domain_error("modexp: zero modulus");
  if (!modulus.is_odd()) {
    throw std::domain_error("modexp_montgomery: modulus must be odd");
  }
  const std::size_t s = modulus.limbs_.size();
  const std::uint32_t* n = modulus.limbs_.data();
  const std::uint32_t n0 = mont_n0(n[0]);

  // R = 2^(32s). R^2 mod n costs the single divmod of the whole routine.
  const BigInt r2 = (BigInt(1) << (64 * s)) % modulus;
  auto padded = [s](const BigInt& v) {
    std::vector<std::uint32_t> out(s, 0);
    std::copy(v.limbs_.begin(), v.limbs_.end(), out.begin());
    return out;
  };
  const std::vector<std::uint32_t> r2l = padded(r2);
  std::vector<std::uint32_t> t(s + 2, 0);

  // Montgomery forms: base_m = base * R, one_m = 1 * R (= mont_mul(R^2, 1)).
  const std::vector<std::uint32_t> basel = padded(*this % modulus);
  std::vector<std::uint32_t> base_m(s), one_m(s);
  mont_mul(basel.data(), r2l.data(), n, n0, s, t.data());
  std::copy(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(s),
            base_m.begin());
  std::vector<std::uint32_t> one(s, 0);
  one[0] = 1;
  mont_mul(r2l.data(), one.data(), n, n0, s, t.data());
  std::copy(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(s),
            one_m.begin());

  // 4-bit fixed window: 16-entry table of base powers in Montgomery form.
  // The window multiply below is unconditional (table[0] holds 1*R, so a
  // zero window multiplies by the Montgomery one — a value no-op at the
  // same cost), which makes the mont_mul count a function of bit_length
  // alone. Residual channel: the table is indexed by the secret window, so
  // a cache-line probe could still recover exponent nibbles; DESIGN.md §13
  // records that limit (scatter-gather table layout is future work).
  constexpr std::size_t kWindow = 4;
  std::vector<std::uint32_t> table(16 * s);
  std::copy(one_m.begin(), one_m.end(), table.begin());
  std::copy(base_m.begin(), base_m.end(), table.begin() + static_cast<std::ptrdiff_t>(s));
  for (std::size_t w = 2; w < 16; ++w) {
    mont_mul(table.data() + (w - 1) * s, base_m.data(), n, n0, s, t.data());
    std::copy(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(s),
              table.begin() + static_cast<std::ptrdiff_t>(w * s));
  }

  const std::size_t bits = exponent.bit_length();
  const std::size_t nwin = (bits + kWindow - 1) / kWindow;
  std::vector<std::uint32_t> acc = one_m;
  std::vector<std::uint32_t> tmp(s);
  for (std::size_t k = nwin; k-- > 0;) {
    if (k != nwin - 1) {
      for (std::size_t sq = 0; sq < kWindow; ++sq) {
        mont_mul(acc.data(), acc.data(), n, n0, s, t.data());
        std::copy(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(s),
                  acc.begin());
      }
    }
    std::size_t w = 0;
    for (std::size_t j = kWindow; j-- > 0;) {
      w = (w << 1) | (exponent.bit(kWindow * k + j) ? 1u : 0u);
    }
    // PPROX-CT-OK(index): fixed-window table select; cache-channel residual
    // documented in DESIGN.md §13.4, timing cost is window-value independent
    mont_mul(acc.data(), table.data() + w * s, n, n0, s, t.data());
    std::copy(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(s),
              tmp.begin());
    acc.swap(tmp);
  }

  // Leave Montgomery form: acc * 1 * R^{-1} = value mod n.
  mont_mul(acc.data(), one.data(), n, n0, s, t.data());
  BigInt out;
  out.limbs_.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(s));
  out.normalize();
  return out;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

BigInt BigInt::modinv(const BigInt& m) const {
  // Extended Euclid tracking only the coefficient of *this, with signs
  // handled by keeping (value, negative?) pairs.
  BigInt r0 = m, r1 = *this % m;
  BigInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    const auto dm = r0.divmod(r1);
    // t2 = t0 - q*t1 (signed)
    const BigInt qt1 = dm.quotient * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = dm.remainder;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }
  if (r0 != BigInt(1)) return BigInt();  // not invertible
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

BigInt BigInt::random_below(const BigInt& bound, RandomSource& rng) {
  if (bound.is_zero()) throw std::domain_error("random_below: zero bound");
  const std::size_t bytes = (bound.bit_length() + 7) / 8;
  while (true) {
    Bytes buf = rng.bytes(bytes);
    // Mask the top byte to the bound's width to cut the rejection rate.
    const std::size_t top_bits = bound.bit_length() % 8;
    if (top_bits != 0) {
      buf[0] &= static_cast<std::uint8_t>((1u << top_bits) - 1);
    }
    BigInt candidate = from_bytes_be(buf);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_with_bits(std::size_t bits, RandomSource& rng) {
  if (bits == 0) return BigInt();
  const std::size_t bytes = (bits + 7) / 8;
  Bytes buf = rng.bytes(bytes);
  const std::size_t top_bit = (bits - 1) % 8;
  buf[0] &= static_cast<std::uint8_t>((1u << (top_bit + 1)) - 1);
  buf[0] |= static_cast<std::uint8_t>(1u << top_bit);
  return from_bytes_be(buf);
}

}  // namespace pprox::crypto
