// Constant-time primitives for secret comparison and validation. Anything
// that inspects a key, MAC/GCM tag, pseudonym block, or OAEP padding must go
// through these helpers: a data-dependent early exit leaks a matching-prefix
// timing signal, which is exactly the class of side channel the PProx threat
// model (paper §3) assumes the proxy code does not add on top of SGX.
// tools/pprox_lint.cpp enforces call sites (its `memcmp` rule).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace pprox::crypto {

/// Constant-time equality over equal-length buffers. Lengths are public
/// (message framing is fixed-size by design), so a length mismatch may
/// return early; the content comparison never does.
inline bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  // The volatile accumulator stops the compiler from strength-reducing the
  // loop into an early-exit form.
  volatile std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = acc | static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

/// Constant-time "is every byte zero" — padding checks on decrypted
/// pseudonym blocks must not reveal where the first garbage byte sits.
inline bool ct_is_zero(ByteView a) {
  volatile std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc = acc | a[i];
  return acc == 0;
}

/// Branch-free select: returns `when_true` if choice is 1, `when_false` if
/// choice is 0. `choice` must be exactly 0 or 1.
inline std::uint8_t ct_select_u8(std::uint8_t choice, std::uint8_t when_true,
                                 std::uint8_t when_false) {
  const std::uint8_t mask = static_cast<std::uint8_t>(-choice);
  return static_cast<std::uint8_t>((when_true & mask) | (when_false & ~mask));
}

/// Expands the low bit of `bit` (0 or 1) into a full byte mask 0x00/0xFF
/// without branching — building block for constant-time table folds.
inline std::uint8_t ct_mask_u8(std::uint8_t bit) {
  return static_cast<std::uint8_t>(-(bit & 1));
}

}  // namespace pprox::crypto
