// Constant-time primitives for secret comparison and validation. Anything
// that inspects a key, MAC/GCM tag, pseudonym block, or OAEP padding must go
// through these helpers: a data-dependent early exit leaks a matching-prefix
// timing signal, which is exactly the class of side channel the PProx threat
// model (paper §3) assumes the proxy code does not add on top of SGX.
// tools/pprox_lint.cpp enforces call sites (its `memcmp` rule).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace pprox::crypto {

/// Constant-time equality over equal-length buffers. Lengths are public
/// (message framing is fixed-size by design), so a length mismatch may
/// return early; the content comparison never does.
inline bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  // The volatile accumulator stops the compiler from strength-reducing the
  // loop into an early-exit form.
  volatile std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = acc | static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

/// Constant-time "is every byte zero" — padding checks on decrypted
/// pseudonym blocks must not reveal where the first garbage byte sits.
inline bool ct_is_zero(ByteView a) {
  volatile std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc = acc | a[i];
  return acc == 0;
}

/// Branch-free select: returns `when_true` if choice is 1, `when_false` if
/// choice is 0. `choice` must be exactly 0 or 1.
inline std::uint8_t ct_select_u8(std::uint8_t choice, std::uint8_t when_true,
                                 std::uint8_t when_false) {
  const std::uint8_t mask = static_cast<std::uint8_t>(-choice);
  return static_cast<std::uint8_t>((when_true & mask) | (when_false & ~mask));
}

/// Expands the low bit of `bit` (0 or 1) into a full byte mask 0x00/0xFF
/// without branching — building block for constant-time table folds.
inline std::uint8_t ct_mask_u8(std::uint8_t bit) {
  return static_cast<std::uint8_t>(-(bit & 1));
}

/// 1 if a == b, else 0, without a data-dependent branch. The `x | -x` fold
/// moves "any bit set" into the sign position.
inline std::uint8_t ct_eq_u8(std::uint8_t a, std::uint8_t b) {
  const std::uint8_t x = static_cast<std::uint8_t>(a ^ b);
  const std::uint8_t any =
      static_cast<std::uint8_t>((x | static_cast<std::uint8_t>(-x)) >> 7);
  return static_cast<std::uint8_t>(any ^ 1);
}

/// 1 if a < b (unsigned), else 0, branch-free. Standard constant-time
/// unsigned comparison: the sign bit of the borrow expression survives the
/// fold for every operand pair, including the a == b and wraparound cases.
inline std::size_t ct_lt_size(std::size_t a, std::size_t b) {
  constexpr unsigned kShift = sizeof(std::size_t) * 8 - 1;
  return (a ^ ((a ^ b) | ((a - b) ^ b))) >> kShift;
}

/// 1 if a >= b (unsigned), else 0, branch-free.
inline std::size_t ct_ge_size(std::size_t a, std::size_t b) {
  return ct_lt_size(a, b) ^ 1;
}

/// Expands the low bit of `bit` (0 or 1) into a full-width size_t mask
/// 0 / ~0 without branching.
inline std::size_t ct_mask_size(std::size_t bit) {
  return static_cast<std::size_t>(0) - (bit & 1);
}

/// Branch-free select over size_t: `when_true` if choice is 1, `when_false`
/// if choice is 0. `choice` must be exactly 0 or 1.
inline std::size_t ct_select_size(std::size_t choice, std::size_t when_true,
                                  std::size_t when_false) {
  const std::size_t mask = ct_mask_size(choice);
  return (when_true & mask) | (when_false & ~mask);
}

/// Declassification point for an aggregated constant-time verdict: the one
/// place a secret-derived value may legitimately feed a branch, because by
/// construction it carries only the bit the caller's API reveals anyway
/// (accept/reject of a padding or tag check, never the position that made
/// it). pprox_lint --ct treats the result as untainted — route a value
/// through this ONLY after the position-dependent work is already folded
/// into it branch-free (DESIGN.md §13.2). The volatile round-trip keeps the
/// optimizer from hoisting the branch back across the fold.
template <typename T>
inline T ct_reveal(T v) {
  volatile T out = v;
  return out;
}

}  // namespace pprox::crypto
