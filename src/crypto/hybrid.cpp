#include "crypto/hybrid.hpp"

#include "crypto/ctr.hpp"

namespace pprox::crypto {

Result<Bytes> hybrid_encrypt(const RsaPublicKey& key, ByteView plaintext,
                             RandomSource& rng) {
  Bytes session_key = rng.bytes(32);
  auto wrapped = rsa_encrypt_oaep(key, session_key, rng);
  if (!wrapped.ok()) {
    secure_wipe(session_key);
    return wrapped.error();
  }

  const RandomIvCipher body_cipher(session_key);
  const Bytes body = body_cipher.encrypt(plaintext, rng);
  secure_wipe(session_key);  // the cipher holds its own key schedule now

  Bytes out;
  out.reserve(2 + wrapped.value().size() + body.size());
  out.push_back(static_cast<std::uint8_t>(wrapped.value().size() >> 8));
  out.push_back(static_cast<std::uint8_t>(wrapped.value().size()));
  append(out, wrapped.value());
  append(out, body);
  return out;
}

Result<Bytes> hybrid_decrypt(const RsaPrivateKey& key, ByteView blob) {
  if (blob.size() < 2) return Error::crypto("hybrid: blob too short");
  const std::size_t wrapped_len =
      (static_cast<std::size_t>(blob[0]) << 8) | blob[1];
  if (blob.size() < 2 + wrapped_len + 16) {
    return Error::crypto("hybrid: truncated blob");
  }
  auto session_key = rsa_decrypt_oaep(key, blob.subspan(2, wrapped_len));
  if (!session_key.ok()) return session_key.error();
  if (session_key.value().size() != 32) {
    secure_wipe(session_key.value());
    return Error::crypto("hybrid: bad session key length");
  }
  const RandomIvCipher body_cipher(session_key.value());
  secure_wipe(session_key.value());
  return body_cipher.decrypt(blob.subspan(2 + wrapped_len));
}

}  // namespace pprox::crypto
