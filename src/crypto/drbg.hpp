// ChaCha20-based deterministic random bit generator. Seeded from the OS
// entropy pool in production use; seedable explicitly for reproducible tests.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/sync.hpp"
#include "common/rand.hpp"
#include "common/thread_annotations.hpp"

namespace pprox::crypto {

/// Raw ChaCha20 block function (RFC 8439). Exposed for tests.
void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::uint8_t out[64]);

/// Cryptographic PRNG: ChaCha20 keystream with periodic rekeying
/// (fast-key-erasure construction). Thread-safe.
class Drbg final : public RandomSource {
 public:
  /// Seeds from the OS entropy source.
  Drbg();

  /// Deterministic seeding for reproducible tests and simulations.
  explicit Drbg(ByteView seed);

  void fill(MutByteView out) override PPROX_EXCLUDES(mutex_);

  /// Mixes extra entropy into the state.
  void reseed(ByteView seed) PPROX_EXCLUDES(mutex_);

 private:
  void refill_locked() PPROX_REQUIRES(mutex_);
  void rekey_locked() PPROX_REQUIRES(mutex_);

  Mutex mutex_;
  std::array<std::uint32_t, 8> key_ PPROX_GUARDED_BY(mutex_){};
  std::array<std::uint32_t, 3> nonce_ PPROX_GUARDED_BY(mutex_){};
  std::uint32_t counter_ PPROX_GUARDED_BY(mutex_) = 0;
  std::array<std::uint8_t, 64> block_ PPROX_GUARDED_BY(mutex_){};
  std::size_t block_pos_ PPROX_GUARDED_BY(mutex_) = 64;  // empty
  std::uint64_t bytes_since_rekey_ PPROX_GUARDED_BY(mutex_) = 0;
};

/// Process-wide DRBG for key and IV generation.
Drbg& global_drbg();

}  // namespace pprox::crypto
