// SHA-256 (FIPS 180-4). Used for enclave measurements, attestation report
// digests, HMAC, OAEP's MGF1, and key fingerprints.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace pprox::crypto {

/// Incremental SHA-256. Typical one-shot use: Sha256::digest(data).
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input.
  void update(ByteView data);

  /// Finalizes and returns the digest. The object must not be reused after.
  std::array<std::uint8_t, kDigestSize> finish();

  /// One-shot digest.
  static std::array<std::uint8_t, kDigestSize> digest(ByteView data);

  /// One-shot digest as a Bytes buffer.
  static Bytes digest_bytes(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104). Used by the attestation MAC path and the DRBG.
Bytes hmac_sha256(ByteView key, ByteView message);

}  // namespace pprox::crypto
