// AES-256-GCM authenticated encryption (NIST SP 800-38D). The paper's
// response protection uses plain AES-CTR under k_u; GCM is the hardened
// option (offered by SGX-SSL) that additionally detects tampering by the
// untrusted server part or a man-in-the-middle between layers. PProx can be
// configured to use it for get-response payloads.
#pragma once

#include <array>

#include "common/bytes.hpp"
#include "common/rand.hpp"
#include "common/result.hpp"
#include "crypto/aes.hpp"

namespace pprox::crypto {

/// AEAD seal/open with AES-256-GCM, 12-byte nonces, 16-byte tags.
class AesGcm {
 public:
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kTagSize = 16;

  /// key must be 16 or 32 bytes.
  explicit AesGcm(ByteView key);

  /// Encrypts and authenticates. Output: ciphertext || tag.
  Bytes seal(const std::array<std::uint8_t, kNonceSize>& nonce,
             ByteView plaintext, ByteView associated_data = {}) const;

  /// Verifies and decrypts ciphertext || tag; error on authentication
  /// failure (nothing is released in that case).
  Result<Bytes> open(const std::array<std::uint8_t, kNonceSize>& nonce,
                     ByteView sealed, ByteView associated_data = {}) const;

  /// Convenience: random nonce prepended to the sealed message.
  Bytes seal_with_random_nonce(ByteView plaintext, RandomSource& rng,
                               ByteView associated_data = {}) const;
  Result<Bytes> open_with_nonce(ByteView nonce_and_sealed,
                                ByteView associated_data = {}) const;

 private:
  using Block = std::array<std::uint8_t, 16>;

  Block ghash(ByteView associated_data, ByteView ciphertext) const;
  void ctr32_crypt(const Block& j0, ByteView in, Bytes& out) const;

  Aes aes_;
  Block h_{};  // GHASH key: AES_K(0^128)
};

/// GF(2^128) multiply used by GHASH (exposed for tests). Dispatches to the
/// CLMUL kernel when the accelerated backend is active (accel.hpp).
void gf128_mul(std::uint8_t x[16], const std::uint8_t y[16]);

/// The branch-free bitwise reference implementation — the ground truth the
/// CLMUL path is differentially tested against, and the accel layer's
/// portable fallback.
void gf128_mul_portable(std::uint8_t x[16], const std::uint8_t y[16]);

}  // namespace pprox::crypto
