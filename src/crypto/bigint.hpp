// Arbitrary-precision unsigned integers, sized for RSA (1024–4096 bit).
// Little-endian 32-bit limbs; division is Knuth's Algorithm D so that modular
// exponentiation stays fast enough for per-request RSA in tests and benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rand.hpp"

namespace pprox::crypto {

/// Unsigned big integer. Value semantics; normalized (no leading zero limbs).
class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  /// Parses big-endian bytes (the natural wire format for RSA).
  static BigInt from_bytes_be(ByteView bytes);

  /// Parses a hex string (no 0x prefix). Throws on invalid digits.
  static BigInt from_hex(std::string_view hex);

  /// Uniform random value in [0, bound). bound must be nonzero.
  static BigInt random_below(const BigInt& bound, RandomSource& rng);

  /// Random integer with exactly `bits` bits (top bit set).
  static BigInt random_with_bits(std::size_t bits, RandomSource& rng);

  /// Serializes to big-endian bytes, zero-padded/truncated to `width`
  /// (width 0 = minimal length; zero encodes as one 0x00 byte).
  Bytes to_bytes_be(std::size_t width = 0) const;

  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  // Comparisons.
  int compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return compare(o) != 0; }
  bool operator<(const BigInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(o) >= 0; }

  // Arithmetic. Subtraction requires *this >= other.
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Quotient and remainder; divisor must be nonzero.
  struct DivMod;  // defined after the class: it holds complete BigInt values
  DivMod divmod(const BigInt& divisor) const;
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;

  /// (this ^ exponent) mod modulus; modulus must be nonzero. Dispatches to
  /// Montgomery multiplication with fixed-window exponentiation for odd
  /// moduli (the RSA case) unless the portable backend is forced
  /// (accel.hpp / PPROX_DISABLE_ACCEL); even moduli take the divmod path.
  BigInt modexp(const BigInt& exponent, const BigInt& modulus) const;

  /// The original square-and-multiply over Knuth divmod reduction — the
  /// reference path Montgomery is differentially tested against.
  BigInt modexp_divmod(const BigInt& exponent, const BigInt& modulus) const;

  /// Montgomery CIOS multiplication + 4-bit fixed-window exponentiation.
  /// modulus must be odd and nonzero (throws std::domain_error otherwise).
  /// Fixed square-and-multiply shape with a branch-free final subtract;
  /// the divmod reference path is NOT constant-time (DESIGN.md §13.4).
  BigInt modexp_montgomery(const BigInt& exponent, const BigInt& modulus) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// Modular inverse of *this mod m; returns zero when no inverse exists.
  BigInt modinv(const BigInt& m) const;

 private:
  void normalize();
  static BigInt shift_limbs(const BigInt& v, std::size_t limbs);

  std::vector<std::uint32_t> limbs_;  // little-endian, normalized
};

struct BigInt::DivMod {
  BigInt quotient;
  BigInt remainder;
};

inline BigInt BigInt::operator/(const BigInt& o) const { return divmod(o).quotient; }
inline BigInt BigInt::operator%(const BigInt& o) const { return divmod(o).remainder; }

}  // namespace pprox::crypto
