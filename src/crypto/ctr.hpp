// AES-CTR mode plus the two wrappers PProx needs (paper §4.1, §5):
//  * DeterministicCipher — AES-256-CTR with a constant IV, so encrypting the
//    same identifier always yields the same ciphertext (pseudonymization).
//  * RandomIvCipher — AES-256-CTR with a fresh random IV prepended to the
//    ciphertext (response protection under the per-request key k_u).
#pragma once

#include <array>

#include "common/bytes.hpp"
#include "common/hotpath.hpp"
#include "common/rand.hpp"
#include "common/result.hpp"
#include "crypto/aes.hpp"

namespace pprox::crypto {

/// Raw CTR keystream application: out = data XOR AES-CTR(key, iv).
/// Encrypt and decrypt are the same operation. Keystream generation is
/// batched through Aes::encrypt_blocks so the dispatch layer (accel.hpp)
/// can pipeline 8 blocks on AES-NI hardware.
PPROX_HOT Bytes ctr_crypt(const Aes& cipher,
                          const std::array<std::uint8_t, 16>& iv,
                          ByteView data);

/// In-place variant: XORs the keystream into `data` without the copy.
/// The batched kernel is the alloc-free, non-blocking form the request path
/// should prefer (pprox_lint --hotpath enforces both properties here).
PPROX_HOT PPROX_NONBLOCKING void ctr_crypt_inplace(
    const Aes& cipher, const std::array<std::uint8_t, 16>& iv,
    MutByteView data);

/// Deterministic symmetric encryption: AES-256-CTR with an all-zero IV.
/// Encrypting equal plaintexts yields equal ciphertexts, which lets the LRS
/// recognize two pseudonymized identifiers as the same entity. This trades
/// semantic security for linkable pseudonyms by design.
class DeterministicCipher {
 public:
  /// key must be 32 bytes (AES-256).
  explicit DeterministicCipher(ByteView key);

  PPROX_HOT Bytes encrypt(ByteView plaintext) const;
  PPROX_HOT Bytes decrypt(ByteView ciphertext) const;

  /// Writes the raw zero-IV keystream prefix into `out`. Because the IV is
  /// constant, the keystream is message-independent: XORing it into any
  /// plaintext of out.size() bytes is bit-for-bit equal to encrypt(). The
  /// batch entry points compute it once per layer key and reuse it across
  /// every identifier block in a flush.
  PPROX_HOT PPROX_NONBLOCKING void keystream(MutByteView out) const;

 private:
  Aes aes_;
};

/// Randomized symmetric encryption: AES-256-CTR with a random 16-byte IV
/// prepended to the ciphertext.
class RandomIvCipher {
 public:
  explicit RandomIvCipher(ByteView key);

  /// Encrypts with a fresh IV drawn from `rng`; output = IV || ciphertext.
  PPROX_HOT Bytes encrypt(ByteView plaintext, RandomSource& rng) const;

  /// Splits the IV off and decrypts. Fails if input is shorter than an IV.
  PPROX_HOT Result<Bytes> decrypt(ByteView iv_and_ciphertext) const;

 private:
  Aes aes_;
};

}  // namespace pprox::crypto
