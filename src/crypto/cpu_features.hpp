// Runtime CPU feature detection for the crypto dispatch layer (accel.hpp).
// Probed once via CPUID on x86; every field is false on other architectures,
// so the dispatcher degrades to the portable reference implementations.
#pragma once

namespace pprox::crypto {

/// Instruction-set extensions relevant to the crypto hot path. AES-NI and
/// PCLMULQDQ operate on XMM state only, so no OS XSAVE handshake is needed
/// beyond baseline SSE2 (guaranteed on x86-64). avx2 is reported for
/// diagnostics but no kernel currently requires it.
struct CpuFeatures {
  bool aesni = false;   ///< AESENC/AESDEC round instructions
  bool pclmul = false;  ///< carry-less multiply (GHASH)
  bool ssse3 = false;   ///< PSHUFB byte shuffles (endianness swaps)
  bool sse41 = false;   ///< PTEST and friends
  bool avx2 = false;    ///< reported only; unused by current kernels
};

/// CPUID probe, executed once and cached for the process lifetime.
const CpuFeatures& cpu_features();

}  // namespace pprox::crypto
