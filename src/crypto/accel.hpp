// Runtime-dispatched crypto acceleration layer (DESIGN.md §10).
//
// The portable reference implementations (table-based AES in aes.cpp, the
// bitwise GF(2^128) multiply in gcm.cpp, divmod-based modexp in bigint.cpp)
// stay the semantic ground truth; this layer selects, once per process,
// hardware kernels that compute bit-identical results:
//
//   * AES-NI round-function kernels with a pipelined 8x/4x multi-block
//     `encrypt_blocks` (consumed by CTR mode and GCM's CTR core),
//   * CLMUL-based GHASH multiplication,
//   * (arch-independent) Montgomery modexp in BigInt, gated on the same
//     backend switch so `PPROX_DISABLE_ACCEL=1` pins every hot path to the
//     reference code for sanitizer and model-check builds.
//
// Dispatch is decided by CPUID (cpu_features.hpp) at first use and can be
// overridden:
//   * environment: PPROX_DISABLE_ACCEL=1 forces the portable backend,
//   * tests/benches: select_backend() flips the process-wide backend so the
//     same binary can cross-validate and measure both paths.
//
// select_backend() is NOT thread-safe; call it from a single thread before
// spawning workers (tests and benches do exactly that). Product code never
// calls it — it inherits the kAuto resolution.
//
// Intrinsics are contained in accel_x86.cpp / cpu_features.cpp (enforced by
// pprox_lint's `intrinsics` rule); this header is portable.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pprox::crypto::accel {

enum class Backend {
  kAuto,         ///< accelerated when available and not disabled by env
  kPortable,     ///< force the reference implementations
  kAccelerated,  ///< force the hardware kernels (fails if unsupported)
};

/// AES block-function backend. `rk` is the standard FIPS 197 round-key
/// schedule produced by Aes's key expansion: 16*(rounds+1) bytes.
struct AesOps {
  const char* name;
  bool constant_time;  ///< no secret-indexed table loads / secret branches
  /// Encrypts `nblocks` independent 16-byte blocks. `in` and `out` may be
  /// the same pointer but must not partially overlap.
  void (*encrypt_blocks)(const std::uint8_t* rk, int rounds,
                         const std::uint8_t* in, std::uint8_t* out,
                         std::size_t nblocks);
  /// Decrypts `nblocks` independent 16-byte blocks (same aliasing rule).
  void (*decrypt_blocks)(const std::uint8_t* rk, int rounds,
                         const std::uint8_t* in, std::uint8_t* out,
                         std::size_t nblocks);
};

/// GHASH backend: x <- (x * h) in GF(2^128), GCM bit convention.
struct GhashOps {
  const char* name;
  bool constant_time;
  void (*gf128_mul)(std::uint8_t x[16], const std::uint8_t h[16]);
};

/// True when hardware kernels are compiled in AND the CPU reports the
/// required features (AES-NI + SSSE3 for AES, PCLMULQDQ for GHASH).
bool available();

/// True when the PPROX_DISABLE_ACCEL environment variable pins kAuto to the
/// portable backend (any value except "" and "0" counts as set).
bool disabled_by_env();

/// Re-dispatches every backend pointer. Returns false (and leaves the
/// dispatch unchanged) if kAccelerated was requested but unavailable.
/// kAccelerated deliberately ignores PPROX_DISABLE_ACCEL so differential
/// tests can exercise both paths in one process.
bool select_backend(Backend backend);

/// The backend the last (or initial) selection resolved to: kPortable or
/// kAccelerated, never kAuto.
Backend active_backend();

/// True when BigInt::modexp should take the Montgomery path. Tracks the
/// backend switch (portable backend => divmod reference path) even though
/// Montgomery itself is portable C++ and needs no CPU feature.
bool montgomery_active();

const AesOps& aes_ops();
const GhashOps& ghash_ops();

#if defined(PPROX_HAVE_X86_ACCEL)
/// Implemented in accel_x86.cpp (the only TU with AES-NI/CLMUL intrinsics).
const AesOps& x86_aes_ops();
const GhashOps& x86_ghash_ops();
#endif

}  // namespace pprox::crypto::accel
