// PPROX-LAYER: shared
//
// CPUID probe. This is one of the two translation units allowed to touch
// x86 intrinsics headers (the other is accel_x86.cpp); pprox_lint's
// `intrinsics` containment rule enforces that boundary.
#include "crypto/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>  // pprox-lint: allow(intrinsics): this TU is the CPUID probe
#define PPROX_CPUID_AVAILABLE 1
#endif

namespace pprox::crypto {
namespace {

CpuFeatures probe() {
  CpuFeatures f;
#if defined(PPROX_CPUID_AVAILABLE)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    f.aesni = (ecx & (1u << 25)) != 0;
    f.pclmul = (ecx & (1u << 1)) != 0;
    f.ssse3 = (ecx & (1u << 9)) != 0;
    f.sse41 = (ecx & (1u << 19)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & (1u << 5)) != 0;
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace pprox::crypto
