// PPROX-LAYER: shared
//
// Backend registry for the crypto dispatch layer. Portable fallbacks live
// in aes.cpp / gcm.cpp (declared in their detail namespaces); the hardware
// kernels live in accel_x86.cpp. No intrinsics here.
#include "crypto/accel.hpp"

#include <cstdlib>

#include "crypto/aes.hpp"
#include "crypto/cpu_features.hpp"
#include "crypto/gcm.hpp"

namespace pprox::crypto::accel {
namespace {

void portable_encrypt_blocks(const std::uint8_t* rk, int rounds,
                             const std::uint8_t* in, std::uint8_t* out,
                             std::size_t nblocks) {
  for (std::size_t b = 0; b < nblocks; ++b) {
    if (out + 16 * b != in + 16 * b) {
      for (int i = 0; i < 16; ++i) out[16 * b + i] = in[16 * b + i];
    }
    detail::aes_encrypt_block_portable(rk, rounds, out + 16 * b);
  }
}

void portable_decrypt_blocks(const std::uint8_t* rk, int rounds,
                             const std::uint8_t* in, std::uint8_t* out,
                             std::size_t nblocks) {
  for (std::size_t b = 0; b < nblocks; ++b) {
    if (out + 16 * b != in + 16 * b) {
      for (int i = 0; i < 16; ++i) out[16 * b + i] = in[16 * b + i];
    }
    detail::aes_decrypt_block_portable(rk, rounds, out + 16 * b);
  }
}

constexpr AesOps kPortableAes = {
    "aes-portable",
    /*constant_time=*/false,  // table S-box (see the caveat in aes.cpp)
    portable_encrypt_blocks,
    portable_decrypt_blocks,
};

constexpr GhashOps kPortableGhash = {
    "ghash-portable",
    /*constant_time=*/true,  // branch-free bitwise multiply
    gf128_mul_portable,
};

// The live dispatch. Plain pointers by design: selection happens once at
// startup (kAuto resolution inside a function-local static) or explicitly
// from single-threaded test/bench setup; see the header contract.
struct Dispatch {
  const AesOps* aes = &kPortableAes;
  const GhashOps* ghash = &kPortableGhash;
  Backend active = Backend::kPortable;
  bool montgomery = false;
};

void resolve(Dispatch& d, Backend backend) {
  // Montgomery modexp is portable C++ — it rides the backend switch (so
  // PPROX_DISABLE_ACCEL pins RSA to the divmod reference path) but needs no
  // CPU feature, so kAuto enables it even without AES-NI hardware.
  d.montgomery = backend == Backend::kAccelerated ||
                 (backend == Backend::kAuto && !disabled_by_env());
  const bool accelerate =
      backend == Backend::kAccelerated ||
      (backend == Backend::kAuto && !disabled_by_env());
#if defined(PPROX_HAVE_X86_ACCEL)
  if (accelerate && available()) {
    d.aes = &x86_aes_ops();
    d.ghash = &x86_ghash_ops();
    d.active = Backend::kAccelerated;
    return;
  }
#endif
  (void)accelerate;
  d.aes = &kPortableAes;
  d.ghash = &kPortableGhash;
  d.active = Backend::kPortable;
}

Dispatch& dispatch() {
  static Dispatch d = [] {
    Dispatch init;
    resolve(init, Backend::kAuto);
    return init;
  }();
  return d;
}

}  // namespace

bool available() {
#if defined(PPROX_HAVE_X86_ACCEL)
  const CpuFeatures& f = cpu_features();
  return f.aesni && f.pclmul && f.ssse3;
#else
  return false;
#endif
}

bool disabled_by_env() {
  const char* v = std::getenv("PPROX_DISABLE_ACCEL");
  if (v == nullptr) return false;
  return v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool select_backend(Backend backend) {
  if (backend == Backend::kAccelerated && !available()) return false;
  resolve(dispatch(), backend);
  return true;
}

Backend active_backend() { return dispatch().active; }

bool montgomery_active() { return dispatch().montgomery; }

const AesOps& aes_ops() { return *dispatch().aes; }

const GhashOps& ghash_ops() { return *dispatch().ghash; }

}  // namespace pprox::crypto::accel
