// AES block cipher (FIPS 197), 128- and 256-bit keys. PProx uses AES-256 in
// CTR mode: constant IV for deterministic pseudonymization of user/item
// identifiers, random IV for the per-request response encryption (paper §4.1).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace pprox::crypto {

/// AES block cipher with a fixed key. Encrypt-only is enough for CTR mode,
/// but the decrypt direction is provided for completeness and tests.
///
/// Block calls route through the runtime dispatch layer (accel.hpp): on
/// AES-NI hardware the batch entry points run a pipelined 8x/4x kernel,
/// otherwise the portable table-based reference. Both produce bit-identical
/// output (test_accel cross-validates every path).
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// key must be 16 (AES-128) or 32 (AES-256) bytes.
  explicit Aes(ByteView key);

  std::size_t key_size() const { return key_size_; }
  int rounds() const { return rounds_; }

  /// Encrypts one 16-byte block in place.
  void encrypt_block(std::uint8_t block[kBlockSize]) const;

  /// Decrypts one 16-byte block in place.
  void decrypt_block(std::uint8_t block[kBlockSize]) const;

  /// Encrypts `nblocks` independent 16-byte blocks from `in` to `out` in one
  /// dispatch call — the batch API CTR mode and GCM's CTR core feed so the
  /// accelerated kernel can keep 8 blocks in flight. `in == out` is allowed;
  /// partial overlap is not.
  void encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                      std::size_t nblocks) const;

  /// Batch decryption counterpart (same aliasing rule).
  void decrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                      std::size_t nblocks) const;

 private:
  std::size_t key_size_;
  int rounds_;
  // Max 15 round keys of 16 bytes for AES-256.
  std::array<std::uint8_t, 16 * 15> round_keys_{};
};

namespace detail {

/// Portable single-block kernels over an expanded round-key schedule — the
/// reference implementations the dispatch layer falls back to (and tests
/// compare against). Not part of the public API.
void aes_encrypt_block_portable(const std::uint8_t* rk, int rounds,
                                std::uint8_t s[16]);
void aes_decrypt_block_portable(const std::uint8_t* rk, int rounds,
                                std::uint8_t s[16]);

}  // namespace detail

}  // namespace pprox::crypto
