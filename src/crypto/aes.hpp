// AES block cipher (FIPS 197), 128- and 256-bit keys. PProx uses AES-256 in
// CTR mode: constant IV for deterministic pseudonymization of user/item
// identifiers, random IV for the per-request response encryption (paper §4.1).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace pprox::crypto {

/// AES block cipher with a fixed key. Encrypt-only is enough for CTR mode,
/// but the decrypt direction is provided for completeness and tests.
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// key must be 16 (AES-128) or 32 (AES-256) bytes.
  explicit Aes(ByteView key);

  std::size_t key_size() const { return key_size_; }

  /// Encrypts one 16-byte block in place.
  void encrypt_block(std::uint8_t block[kBlockSize]) const;

  /// Decrypts one 16-byte block in place.
  void decrypt_block(std::uint8_t block[kBlockSize]) const;

 private:
  std::size_t key_size_;
  int rounds_;
  // Max 15 round keys of 16 bytes for AES-256.
  std::array<std::uint8_t, 16 * 15> round_keys_{};
};

}  // namespace pprox::crypto
