#include "crypto/rsa.hpp"

#include <cstring>

#include "crypto/ct.hpp"
#include "crypto/prime.hpp"
#include "crypto/sha256.hpp"

namespace pprox::crypto {
namespace {

constexpr std::uint64_t kPublicExponent = 65537;

// DER prefix for a SHA-256 DigestInfo (RFC 8017 §9.2 note 1).
constexpr std::uint8_t kSha256DigestInfo[] = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

}  // namespace

Bytes RsaPublicKey::fingerprint() const {
  Bytes encoded = n.to_bytes_be();
  append(encoded, e.to_bytes_be());
  return Sha256::digest_bytes(encoded);
}

RsaKeyPair rsa_generate(std::size_t bits, RandomSource& rng) {
  const BigInt e(kPublicExponent);
  while (true) {
    const BigInt p = generate_prime(bits / 2, rng);
    BigInt q = generate_prime(bits - bits / 2, rng);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigInt p1 = p - BigInt(1);
    const BigInt q1 = q - BigInt(1);
    const BigInt phi = p1 * q1;
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;
    const BigInt d = e.modinv(phi);
    if (d.is_zero()) continue;

    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = d;
    // CRT wants p > q so q_inv = q^-1 mod p is directly usable.
    if (p >= q) {
      priv.p = p;
      priv.q = q;
    } else {
      priv.p = q;
      priv.q = p;
    }
    priv.d_p = d % (priv.p - BigInt(1));
    priv.d_q = d % (priv.q - BigInt(1));
    priv.q_inv = priv.q.modinv(priv.p);
    return {priv.public_key(), priv};
  }
}

BigInt rsa_public_op(const RsaPublicKey& key, const BigInt& m) {
  return m.modexp(key.e, key.n);
}

BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& c) {
  // CRT: ~4x faster than a full-width modexp.
  const BigInt m1 = (c % key.p).modexp(key.d_p, key.p);
  const BigInt m2 = (c % key.q).modexp(key.d_q, key.q);
  // h = q_inv * (m1 - m2) mod p, handling m1 < m2 by adding p.
  BigInt diff;
  if (m1 >= m2) {
    diff = m1 - m2;
  } else {
    diff = (m1 + key.p) - (m2 % key.p);
    diff = diff % key.p;
  }
  const BigInt h = (key.q_inv * diff) % key.p;
  return m2 + key.q * h;
}

Result<Bytes> rsa_encrypt_pkcs1(const RsaPublicKey& key, ByteView plaintext,
                                RandomSource& rng) {
  const std::size_t k = key.modulus_bytes();
  if (plaintext.size() + 11 > k) {
    return Error::crypto("PKCS1: plaintext too long for modulus");
  }
  // EM = 0x00 || 0x02 || PS(nonzero random) || 0x00 || M
  Bytes em(k, 0);
  em[1] = 0x02;
  const std::size_t ps_len = k - 3 - plaintext.size();
  for (std::size_t i = 0; i < ps_len; ++i) {
    std::uint8_t b = 0;
    while (b == 0) rng.fill(MutByteView(&b, 1));
    em[2 + i] = b;
  }
  em[2 + ps_len] = 0x00;
  if (!plaintext.empty()) {
    std::memcpy(em.data() + 3 + ps_len, plaintext.data(), plaintext.size());
  }

  const BigInt m = BigInt::from_bytes_be(em);
  return rsa_public_op(key, m).to_bytes_be(k);
}

Result<Bytes> rsa_unpad_pkcs1(ByteView em) {
  if (em.size() < 11) return Error::crypto("PKCS1: bad padding");
  // EM = 0x00 || 0x02 || PS(>= 8 nonzero bytes) || 0x00 || M. Fold every
  // structural check into one accumulator and find the first zero byte
  // without branching on byte values: a data-dependent early exit would
  // hand a Bleichenbacher oracle the separator position.
  std::uint8_t bad = em[0];
  bad = static_cast<std::uint8_t>(bad | (em[1] ^ 0x02));
  std::size_t sep = 0;
  std::size_t found = 0;
  for (std::size_t i = 2; i < em.size(); ++i) {
    const std::size_t is_zero = ct_eq_u8(em[i], 0x00);
    sep = ct_select_size(is_zero & (found ^ 1), i, sep);
    found |= is_zero;
  }
  bad = static_cast<std::uint8_t>(bad | (found ^ 1));
  // PS must be at least 8 bytes, so the separator sits at index >= 10.
  bad = static_cast<std::uint8_t>(bad | ct_lt_size(sep, 10));
  if (ct_reveal(bad) != 0) return Error::crypto("PKCS1: bad padding");
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep) + 1, em.end());
}

Result<Bytes> rsa_decrypt_pkcs1(const RsaPrivateKey& key, ByteView ciphertext) {
  const std::size_t k = key.modulus_bytes();
  if (ciphertext.size() != k) return Error::crypto("PKCS1: bad ciphertext size");
  const BigInt c = BigInt::from_bytes_be(ciphertext);
  if (c >= key.n) return Error::crypto("PKCS1: ciphertext out of range");
  const Bytes em = rsa_private_op(key, c).to_bytes_be(k);
  return rsa_unpad_pkcs1(em);
}

Bytes mgf1_sha256(ByteView seed, std::size_t length) {
  Bytes out;
  out.reserve(length + Sha256::kDigestSize);
  for (std::uint32_t counter = 0; out.size() < length; ++counter) {
    Sha256 h;
    h.update(seed);
    const std::uint8_t c[4] = {
        static_cast<std::uint8_t>(counter >> 24),
        static_cast<std::uint8_t>(counter >> 16),
        static_cast<std::uint8_t>(counter >> 8),
        static_cast<std::uint8_t>(counter)};
    h.update(ByteView(c, 4));
    const auto d = h.finish();
    out.insert(out.end(), d.begin(), d.end());
  }
  out.resize(length);
  return out;
}

Result<Bytes> rsa_encrypt_oaep(const RsaPublicKey& key, ByteView plaintext,
                               RandomSource& rng) {
  constexpr std::size_t h = Sha256::kDigestSize;
  const std::size_t k = key.modulus_bytes();
  if (plaintext.size() + 2 * h + 2 > k) {
    return Error::crypto("OAEP: plaintext too long for modulus");
  }
  // DB = lHash || PS(zeros) || 0x01 || M
  Bytes db(k - h - 1, 0);
  const auto l_hash = Sha256::digest(ByteView());
  std::memcpy(db.data(), l_hash.data(), h);
  db[db.size() - plaintext.size() - 1] = 0x01;
  if (!plaintext.empty()) {  // empty span has a null data() — UB for memcpy
    std::memcpy(db.data() + db.size() - plaintext.size(), plaintext.data(),
                plaintext.size());
  }

  Bytes seed(h);
  rng.fill(seed);
  const Bytes db_mask = mgf1_sha256(seed, db.size());
  xor_into(db, db_mask);
  const Bytes seed_mask = mgf1_sha256(db, h);
  xor_into(seed, seed_mask);

  Bytes em(k, 0);
  std::memcpy(em.data() + 1, seed.data(), h);
  std::memcpy(em.data() + 1 + h, db.data(), db.size());
  const BigInt m = BigInt::from_bytes_be(em);
  return rsa_public_op(key, m).to_bytes_be(k);
}

Result<Bytes> rsa_unpad_oaep(ByteView em) {
  constexpr std::size_t h = Sha256::kDigestSize;
  if (em.size() < 2 * h + 2) return Error::crypto("OAEP: bad ciphertext size");

  Bytes seed(em.begin() + 1, em.begin() + 1 + h);
  Bytes db(em.begin() + 1 + static_cast<std::ptrdiff_t>(h), em.end());
  const Bytes seed_mask = mgf1_sha256(db, h);
  xor_into(seed, seed_mask);
  const Bytes db_mask = mgf1_sha256(seed, db.size());
  xor_into(db, db_mask);

  const auto l_hash = Sha256::digest(ByteView());
  // Single aggregated validity flag: avoid early exits that would leak which
  // check failed (Manger-style oracle hardening). The separator scan is
  // branch-free too: DB = lHash || PS(zeros) || 0x01 || M, and any nonzero
  // non-0x01 byte inside PS must poison `bad` without revealing where.
  std::uint8_t bad = em[0];
  for (std::size_t i = 0; i < h; ++i) {
    bad = static_cast<std::uint8_t>(bad | (db[i] ^ l_hash[i]));
  }
  std::size_t sep = 0;
  std::size_t found = 0;
  for (std::size_t i = h; i < db.size(); ++i) {
    const std::size_t is_one = ct_eq_u8(db[i], 0x01);
    const std::size_t is_zero = ct_eq_u8(db[i], 0x00);
    sep = ct_select_size(is_one & (found ^ 1), i, sep);
    // Garbage before the separator: neither 0x00 (PS) nor the 0x01 marker.
    bad = static_cast<std::uint8_t>(
        bad | ((found ^ 1) & (is_one ^ 1) & (is_zero ^ 1)));
    found |= is_one;
  }
  bad = static_cast<std::uint8_t>(bad | (found ^ 1));
  if (ct_reveal(bad) != 0) return Error::crypto("OAEP: decryption error");
  return Bytes(db.begin() + static_cast<std::ptrdiff_t>(sep) + 1, db.end());
}

Result<Bytes> rsa_decrypt_oaep(const RsaPrivateKey& key, ByteView ciphertext) {
  constexpr std::size_t h = Sha256::kDigestSize;
  const std::size_t k = key.modulus_bytes();
  if (ciphertext.size() != k || k < 2 * h + 2) {
    return Error::crypto("OAEP: bad ciphertext size");
  }
  const BigInt c = BigInt::from_bytes_be(ciphertext);
  // PPROX-CT-OK(branch): range check of public wire ciphertext against the
  // public modulus n; no private-key material is involved.
  if (c >= key.n) return Error::crypto("OAEP: ciphertext out of range");
  const Bytes em = rsa_private_op(key, c).to_bytes_be(k);
  return rsa_unpad_oaep(em);
}

Bytes rsa_sign_sha256(const RsaPrivateKey& key, ByteView message) {
  const std::size_t k = key.modulus_bytes();
  const auto digest = Sha256::digest(message);
  // EM = 0x00 || 0x01 || 0xFF..FF || 0x00 || DigestInfo
  Bytes em(k, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  const std::size_t t_len = sizeof(kSha256DigestInfo) + digest.size();
  em[k - t_len - 1] = 0x00;
  std::memcpy(em.data() + k - t_len, kSha256DigestInfo, sizeof(kSha256DigestInfo));
  std::memcpy(em.data() + k - digest.size(), digest.data(), digest.size());
  const BigInt m = BigInt::from_bytes_be(em);
  return rsa_private_op(key, m).to_bytes_be(k);
}

bool rsa_verify_sha256(const RsaPublicKey& key, ByteView message,
                       ByteView signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const BigInt s = BigInt::from_bytes_be(signature);
  if (s >= key.n) return false;
  const Bytes em = rsa_public_op(key, s).to_bytes_be(k);

  const auto digest = Sha256::digest(message);
  Bytes expected(k, 0xFF);
  expected[0] = 0x00;
  expected[1] = 0x01;
  const std::size_t t_len = sizeof(kSha256DigestInfo) + digest.size();
  if (k < t_len + 3) return false;
  expected[k - t_len - 1] = 0x00;
  std::memcpy(expected.data() + k - t_len, kSha256DigestInfo,
              sizeof(kSha256DigestInfo));
  std::memcpy(expected.data() + k - digest.size(), digest.data(), digest.size());
  return ct_equal(em, expected);
}

}  // namespace pprox::crypto
