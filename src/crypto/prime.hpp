// Probabilistic primality testing and prime generation for RSA keygen.
#pragma once

#include "crypto/bigint.hpp"

namespace pprox::crypto {

/// Miller–Rabin with `rounds` random bases (error probability <= 4^-rounds),
/// preceded by trial division by small primes.
bool is_probable_prime(const BigInt& n, RandomSource& rng, int rounds = 24);

/// Generates a random prime with exactly `bits` bits. The top two bits are
/// set so the product of two such primes has exactly 2*bits bits.
BigInt generate_prime(std::size_t bits, RandomSource& rng);

}  // namespace pprox::crypto
