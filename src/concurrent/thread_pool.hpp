// Worker thread pool draining an MpmcQueue of tasks. Models the paper's
// in-enclave data-processing pool (§5): the server thread enqueues parsed
// packets, workers perform crypto and forwarding.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "concurrent/mpmc_queue.hpp"

namespace pprox::concurrent {

/// Fixed-size pool executing std::function<void()> tasks in FIFO-ish order.
/// submit() blocks only when the bounded queue is full (backpressure).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads, std::size_t queue_capacity = 4096)
      : queue_(queue_capacity) {
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back(DetThread([this] { worker_loop(); }, "pool-worker"));
    }
  }

  ~ThreadPool() { shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; spins briefly then sleeps when the queue is full.
  /// Returns false after shutdown() (task is dropped). Every task accepted
  /// (true returned) is guaranteed to execute before shutdown() completes.
#ifdef PPROX_CHECK_SELFTEST
  // Fault injection for pprox_check --model pool (tools/CMakeLists.txt):
  // the pre-fix submit/shutdown pair, preserved verbatim. A submit() here
  // can pass its stopping_ check, lose the CPU, and publish its task after
  // shutdown() joined every worker — the task is accepted but never runs
  // (tools/traces/pool_lost_task.txt). The selftest build must make the
  // model FAIL on exactly this schedule.
  bool submit(std::function<void()> task) {
    while (!stopping_.load(std::memory_order_acquire)) {
      pending_.fetch_add(1, std::memory_order_acq_rel);
      if (queue_.try_push(std::move(task))) {
        LockGuard lock(mutex_);
        cv_.notify_one();
        return true;
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        LockGuard lock(mutex_);
        drained_cv_.notify_all();
      }
      std::this_thread::yield();
    }
    return false;
  }
#else
  bool submit(std::function<void()> task) {
    // The in-flight gate lets shutdown() tell "no submit will ever publish
    // again" apart from "no submit is publishing right now": a submit that
    // passed its stopping_ check races shutdown() joining the workers, and
    // its accepted task would otherwise sit in the queue forever.
    in_flight_submits_.fetch_add(1, std::memory_order_acq_rel);
    bool pushed = false;
    while (!stopping_.load(std::memory_order_acquire)) {
      // Count the task BEFORE publishing it: a worker may pop and finish it
      // the instant try_push succeeds, and its fetch_sub must never observe
      // a counter the task is missing from (transient underflow would let
      // drain() return while work is still in flight).
      pending_.fetch_add(1, std::memory_order_acq_rel);
      if (queue_.try_push(std::move(task))) {
        LockGuard lock(mutex_);
        cv_.notify_one();
        pushed = true;
        break;
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        LockGuard lock(mutex_);
        drained_cv_.notify_all();
      }
      std::this_thread::yield();
    }
    {
      LockGuard lock(mutex_);
      if (in_flight_submits_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        submit_done_cv_.notify_all();
      }
    }
    return pushed;
  }
#endif

  /// Blocks until every submitted task has finished executing.
  void drain() {
    UniqueLock lock(mutex_);
    drained_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }

  /// Stops accepting tasks, finishes queued work, joins all workers.
#ifdef PPROX_CHECK_SELFTEST
  void shutdown() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) return;
    {
      LockGuard lock(mutex_);
      cv_.notify_all();
    }
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }
#else
  void shutdown() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) return;
    {
      LockGuard lock(mutex_);
      cv_.notify_all();
    }
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    // A submit() that passed its stopping_ check before the CAS above may
    // publish its task only after every worker exited. Wait for such
    // stragglers to land, then run whatever is left inline so "accepted
    // implies executed" holds.
    {
      UniqueLock lock(mutex_);
      submit_done_cv_.wait(lock, [this] {
        return in_flight_submits_.load(std::memory_order_acquire) == 0;
      });
    }
    while (auto task = queue_.try_pop()) {
      (*task)();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        LockGuard lock(mutex_);
        drained_cv_.notify_all();
      }
    }
  }
#endif

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void worker_loop() {
    while (true) {
      auto task = queue_.try_pop();
      if (task.has_value()) {
        (*task)();
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          LockGuard lock(mutex_);
          drained_cv_.notify_all();
        }
        continue;
      }
      if (stopping_.load(std::memory_order_acquire)) return;
      // Untimed wait: every try_push success and shutdown() notifies under
      // mutex_, and the predicate re-checks under mutex_, so no wakeup can
      // be lost. (An earlier 1ms timed wait "covered" missed notifies by
      // polling; under a worker-favouring schedule that polling loop never
      // yields — pprox_check flagged it as an unbounded spin,
      // tools/traces/pool_worker_spin.txt.)
      UniqueLock lock(mutex_);
      cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               queue_.approx_size() > 0;
      });
    }
  }

  MpmcQueue<std::function<void()>> queue_;  // lock-free, internally ordered
  std::vector<DetThread> workers_;
  Atomic<bool> stopping_{false};
  Atomic<std::size_t> pending_{0};
  Atomic<std::size_t> in_flight_submits_{0};
  Mutex mutex_;  // guards only the cv sleep/wake protocol
  CondVar cv_;
  CondVar drained_cv_;
  CondVar submit_done_cv_;  // shutdown() waits out straggling submit()s
};

}  // namespace pprox::concurrent
