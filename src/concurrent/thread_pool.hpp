// Worker thread pool draining an MpmcQueue of tasks. Models the paper's
// in-enclave data-processing pool (§5): the server thread enqueues parsed
// packets, workers perform crypto and forwarding.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "concurrent/mpmc_queue.hpp"

namespace pprox::concurrent {

/// Fixed-size pool executing std::function<void()> tasks in FIFO-ish order.
/// submit() blocks only when the bounded queue is full (backpressure).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads, std::size_t queue_capacity = 4096)
      : queue_(queue_capacity) {
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() { shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; spins briefly then sleeps when the queue is full.
  /// Returns false after shutdown() (task is dropped).
  bool submit(std::function<void()> task) {
    while (!stopping_.load(std::memory_order_acquire)) {
      // Count the task BEFORE publishing it: a worker may pop and finish it
      // the instant try_push succeeds, and its fetch_sub must never observe
      // a counter the task is missing from (transient underflow would let
      // drain() return while work is still in flight).
      pending_.fetch_add(1, std::memory_order_acq_rel);
      if (queue_.try_push(std::move(task))) {
        std::lock_guard<std::mutex> lock(mutex_);
        cv_.notify_one();
        return true;
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        drained_cv_.notify_all();
      }
      std::this_thread::yield();
    }
    return false;
  }

  /// Blocks until every submitted task has finished executing.
  void drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }

  /// Stops accepting tasks, finishes queued work, joins all workers.
  void shutdown() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      cv_.notify_all();
    }
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void worker_loop() {
    while (true) {
      auto task = queue_.try_pop();
      if (task.has_value()) {
        (*task)();
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(mutex_);
          drained_cv_.notify_all();
        }
        continue;
      }
      if (stopping_.load(std::memory_order_acquire)) return;
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
        return stopping_.load(std::memory_order_acquire) ||
               queue_.approx_size() > 0;
      });
    }
  }

  MpmcQueue<std::function<void()>> queue_;  // lock-free, internally ordered
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> pending_{0};
  std::mutex mutex_;  // guards only the cv sleep/wake protocol
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
};

}  // namespace pprox::concurrent
