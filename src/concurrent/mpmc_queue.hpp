// Bounded lock-free multi-producer/multi-consumer queue (Dmitry Vyukov's
// algorithm). This is the shared work queue between the proxy's server
// thread and the enclave data-processing thread pool (paper §5 uses
// Desrochers' queue; Vyukov's bounded design gives the same non-blocking
// hand-off with natural backpressure when the proxy saturates).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/sync.hpp"

namespace pprox::concurrent {

template <typename T>
class MpmcQueue {
 public:
  /// capacity is rounded up to a power of two; must be >= 2.
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Attempts to enqueue; false when the queue is full. On failure the
  /// argument is left untouched (not moved-from), so callers can retry with
  /// the same object.
  bool try_push(T&& value) { return push_impl(std::move(value)); }
  bool try_push(const T& value) { return push_impl(value); }

  /// Attempts to dequeue; nullopt when the queue is empty.
#ifdef PPROX_CHECK_SELFTEST
  // Fault injection for pprox_check --model mpmc (tools/CMakeLists.txt): a
  // broken dequeue that claims a slot with fetch_add BEFORE checking its
  // sequence. A pop racing an in-flight push burns the slot and returns
  // empty, so the pushed element is skipped forever — the history is not
  // linearizable against the FIFO spec and the selftest build must FAIL.
  std::optional<T> try_pop() {
    const std::size_t pos = head_.fetch_add(1, std::memory_order_relaxed);
    Cell* cell = &cells_[pos & mask_];
    const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
    if (seq != pos + 1) return std::nullopt;  // slot already consumed: lost
    T value = std::move(cell->value);
    cell->value = T();
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return value;
  }
#else
  std::optional<T> try_pop() {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    T value = std::move(cell->value);
    cell->value = T();  // release resources held by the slot immediately
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return value;
  }
#endif  // PPROX_CHECK_SELFTEST

  /// Approximate size; exact only when quiescent.
  std::size_t approx_size() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  template <typename U>
  bool push_impl(U&& value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full; `value` not consumed
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::forward<U>(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  // T must be default-constructible and move-assignable; slots hold live
  // (possibly empty) objects, which sidesteps placement-new lifetime rules.
  struct alignas(64) Cell {
    Atomic<std::size_t> sequence;
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_;
  alignas(64) Atomic<std::size_t> head_;
  alignas(64) Atomic<std::size_t> tail_;
};

}  // namespace pprox::concurrent
