#include "http/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace pprox::http {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Formats `value` into `buf` and returns the written view. Replaces the
/// std::to_string round trip on the serialize path (one fewer temporary
/// string per message).
std::string_view format_number(char (&buf)[20], std::size_t value) {
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;  // 20 digits always fit a size_t
  return std::string_view(buf, static_cast<std::size_t>(ptr - buf));
}

void serialize_headers(std::string& out, const Headers& headers,
                       std::size_t body_len) {
  for (const auto& [name, value] : headers) {
    if (iequals(name, "Content-Length")) {
      continue;  // rewritten below to stay consistent with the body
    }
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  char buf[20];
  out += "Content-Length: ";
  out += format_number(buf, body_len);
  out += "\r\n\r\n";
}

}  // namespace

const std::string* find_header(const Headers& headers, std::string_view name) {
  for (const auto& [n, v] : headers) {
    if (iequals(n, name)) return &v;
  }
  return nullptr;
}

std::string_view status_reason(int code) {
  switch (code) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

void HttpRequest::set_header(std::string name, std::string value) {
  for (auto& [n, v] : headers) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

void HttpResponse::set_header(std::string name, std::string value) {
  for (auto& [n, v] : headers) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

std::string HttpRequest::serialize() const {
  std::string out;
  serialize_to(out);
  return out;
}

void HttpRequest::serialize_to(std::string& out) const {
  // PPROX-HOTPATH-OK(alloc): single amortized growth of the caller's buffer
  out.reserve(out.size() + 64 + body.size());
  out += method;
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\n";
  serialize_headers(out, headers, body.size());
  out += body;
}

std::string HttpResponse::serialize() const {
  std::string out;
  serialize_to(out);
  return out;
}

void HttpResponse::serialize_to(std::string& out) const {
  // PPROX-HOTPATH-OK(alloc): single amortized growth of the caller's buffer
  out.reserve(out.size() + 64 + body.size());
  out += "HTTP/1.1 ";
  char buf[20];
  out += format_number(buf, static_cast<std::size_t>(status));
  out += ' ';
  out += status_reason(status);
  out += "\r\n";
  serialize_headers(out, headers, body.size());
  out += body;
}

HttpResponse HttpResponse::json_response(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.set_header("Content-Type", "application/json");
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::error_response(int status, std::string_view message) {
  return json_response(status, std::string("{\"error\":\"") + std::string(message) + "\"}");
}

std::optional<HttpParser::Head> HttpParser::try_parse_head() {
  const std::size_t head_end = buffer_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    // Guard against unbounded header growth from a broken peer.
    if (buffer_.size() > 64 * 1024) broken_ = true;
    return std::nullopt;
  }
  Head head;
  head.consumed = head_end + 4;

  std::size_t line_start = 0;
  std::size_t line_end = buffer_.find("\r\n");
  head.start_line = buffer_.substr(0, line_end);
  line_start = line_end + 2;

  while (line_start < head_end) {
    line_end = buffer_.find("\r\n", line_start);
    const std::string_view line(buffer_.data() + line_start, line_end - line_start);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      broken_ = true;
      return std::nullopt;
    }
    head.headers.emplace_back(std::string(trim(line.substr(0, colon))),
                              std::string(trim(line.substr(colon + 1))));
    line_start = line_end + 2;
  }

  if (const std::string* cl = find_header(head.headers, "Content-Length")) {
    std::size_t len = 0;
    const auto [ptr, ec] =
        std::from_chars(cl->data(), cl->data() + cl->size(), len);
    if (ec != std::errc() || ptr != cl->data() + cl->size()) {
      broken_ = true;
      return std::nullopt;
    }
    head.body_len = len;
  }
  return head;
}

std::optional<HttpRequest> HttpParser::next_request() {
  if (broken_ || mode_ != Mode::kRequest) return std::nullopt;
  auto head = try_parse_head();
  if (!head) return std::nullopt;
  if (buffer_.size() < head->consumed + head->body_len) return std::nullopt;

  HttpRequest req;
  // Start line: METHOD SP TARGET SP VERSION
  const std::string& line = head->start_line;
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1 ||
      line.compare(sp2 + 1, std::string::npos, "HTTP/1.1") != 0) {
    broken_ = true;
    return std::nullopt;
  }
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.headers = std::move(head->headers);
  req.body = buffer_.substr(head->consumed, head->body_len);
  buffer_.erase(0, head->consumed + head->body_len);
  return req;
}

std::optional<HttpResponse> HttpParser::next_response() {
  if (broken_ || mode_ != Mode::kResponse) return std::nullopt;
  auto head = try_parse_head();
  if (!head) return std::nullopt;
  if (buffer_.size() < head->consumed + head->body_len) return std::nullopt;

  HttpResponse resp;
  // Start line: HTTP/1.1 SP STATUS SP REASON
  const std::string& line = head->start_line;
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || line.compare(0, 8, "HTTP/1.1") != 0) {
    broken_ = true;
    return std::nullopt;
  }
  int status = 0;
  const char* begin = line.data() + sp1 + 1;
  const auto [ptr, ec] = std::from_chars(begin, line.data() + line.size(), status);
  if (ec != std::errc() || status < 100 || status > 599) {
    broken_ = true;
    return std::nullopt;
  }
  (void)ptr;
  resp.status = status;
  resp.headers = std::move(head->headers);
  resp.body = buffer_.substr(head->consumed, head->body_len);
  buffer_.erase(0, head->consumed + head->body_len);
  return resp;
}

void Router::add(std::string method, std::string pattern, Handler handler) {
  routes_.push_back({std::move(method), std::move(pattern), std::move(handler)});
}

bool Router::pattern_matches(std::string_view pattern, std::string_view path) {
  // Segment-wise comparison; '*' matches exactly one nonempty segment.
  while (true) {
    const std::size_t p_slash = pattern.find('/');
    const std::size_t t_slash = path.find('/');
    const std::string_view p_seg = pattern.substr(0, p_slash);
    const std::string_view t_seg = path.substr(0, t_slash);
    // PPROX-CT-OK(branch): matches the public URL path against the public
    // route table; neither side carries request-body secrets.
    if (p_seg != "*" && p_seg != t_seg) return false;
    // PPROX-CT-OK(branch): public URL path vs public route table.
    if (p_seg == "*" && t_seg.empty()) return false;
    const bool p_done = p_slash == std::string_view::npos;
    const bool t_done = t_slash == std::string_view::npos;
    if (p_done || t_done) return p_done && t_done;
    pattern.remove_prefix(p_slash + 1);
    path.remove_prefix(t_slash + 1);
  }
}

HttpResponse Router::dispatch(const HttpRequest& request) const {
  std::string_view path = request.target;
  const std::size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);

  bool path_matched = false;
  for (const auto& route : routes_) {
    if (!pattern_matches(route.pattern, path)) continue;
    path_matched = true;
    // PPROX-CT-OK(branch): routing on the public method/path request line.
    if (route.method == request.method) return route.handler(request);
  }
  if (path_matched) {
    return HttpResponse::error_response(405, "method not allowed");
  }
  return HttpResponse::error_response(404, "no route");
}

}  // namespace pprox::http
