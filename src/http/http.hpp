// Minimal HTTP/1.1 codec: message types, incremental stream parsers, and a
// tiny REST router. This is the REST surface the LRS exposes and the proxy
// layers forward (paper §2.1, §4.2). Content-Length framing only; the proxy
// controls both producers, so chunked encoding is never emitted.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hotpath.hpp"
#include "common/result.hpp"

namespace pprox::http {

using Headers = std::vector<std::pair<std::string, std::string>>;

/// Case-insensitive header lookup; nullptr when absent.
const std::string* find_header(const Headers& headers, std::string_view name);

/// Canonical reason phrase for common status codes.
std::string_view status_reason(int code);

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  Headers headers;
  std::string body;

  void set_header(std::string name, std::string value);
  const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }

  /// Serializes with a correct Content-Length header.
  std::string serialize() const;
  /// Appends the wire form to `out` without intermediate temporaries, so
  /// callers on the request path can reuse one output buffer.
  PPROX_HOT PPROX_NONBLOCKING void serialize_to(std::string& out) const;
};

struct HttpResponse {
  int status = 200;
  Headers headers;
  std::string body;

  void set_header(std::string name, std::string value);
  const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }

  std::string serialize() const;
  /// Appends the wire form to `out` (see HttpRequest::serialize_to).
  PPROX_HOT PPROX_NONBLOCKING void serialize_to(std::string& out) const;

  static HttpResponse json_response(int status, std::string body);
  static HttpResponse error_response(int status, std::string_view message);
};

/// Incremental parser over a byte stream carrying consecutive HTTP messages.
/// feed() appends data; next_request()/next_response() pop complete messages.
class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };

  explicit HttpParser(Mode mode) : mode_(mode) {}

  /// Appends raw bytes from the stream.
  PPROX_HOT void feed(std::string_view data) {
    buffer_.append(data);  // PPROX-HOTPATH-OK(alloc): parser buffer capacity is amortized across requests on the connection
  }

  /// True once the stream is irrecoverably malformed.
  bool broken() const { return broken_; }

  /// Pops the next complete request (kRequest mode). nullopt = need more
  /// data. When the stream is malformed, broken() turns true.
  std::optional<HttpRequest> next_request();

  /// Pops the next complete response (kResponse mode).
  std::optional<HttpResponse> next_response();

  /// Bytes currently buffered but not yet consumed.
  std::size_t buffered() const { return buffer_.size(); }

 private:
  struct Head {
    std::string start_line;
    Headers headers;
    std::size_t body_len = 0;
    std::size_t consumed = 0;  // offset of body start
  };
  std::optional<Head> try_parse_head();

  Mode mode_;
  std::string buffer_;
  bool broken_ = false;
};

/// Request handler signature.
using Handler = std::function<HttpResponse(const HttpRequest&)>;

/// Tiny REST router: exact paths and `*` suffix wildcards, e.g.
/// ("GET", "/engines/*/queries"). The first matching route wins.
class Router {
 public:
  void add(std::string method, std::string pattern, Handler handler);

  /// Dispatches; 404 when no route matches. The query string (after '?') is
  /// ignored for matching.
  HttpResponse dispatch(const HttpRequest& request) const;

  /// True when `pattern` matches `path` ('*' matches one path segment).
  static bool pattern_matches(std::string_view pattern, std::string_view path);

 private:
  struct Route {
    std::string method;
    std::string pattern;
    Handler handler;
  };
  std::vector<Route> routes_;
};

}  // namespace pprox::http
