#include "workload/injector.hpp"

#include <thread>

#include "common/sync.hpp"

namespace pprox::workload {

InjectionReport run_injection(
    net::HttpChannel& channel, const InjectorConfig& config,
    const std::function<http::HttpRequest()>& make_request) {
  using Clock = std::chrono::steady_clock;
  InjectionReport report;

  Mutex mutex;
  CondVar done_cv;
  std::size_t in_flight = 0;
  bool injecting = true;

  const auto start = Clock::now();
  const auto end = start + config.duration;
  const auto measure_from = start + config.warmup;
  const auto measure_to = end - config.cooldown;
  const auto interval =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          1.0 / config.rps));

  auto next_shot = start;
  while (Clock::now() < end) {
    std::this_thread::sleep_until(next_shot);
    next_shot += interval;

    const auto sent_at = Clock::now();
    if (sent_at >= end) break;
    {
      LockGuard lock(mutex);
      ++report.injected;
      ++in_flight;
    }
    // The by-ref captures (mutex, report, in_flight, done_cv) outlive every
    // callback: run_injection blocks on done_cv until in_flight reaches zero
    // before returning, so no completion can run after the frame dies.
    // PPROX-LIFETIME-OK(capture): joined via done_cv before frame exit
    channel.send(make_request(), [&, sent_at](http::HttpResponse response) {
      const auto now = Clock::now();
      const double latency_ms =
          std::chrono::duration<double, std::milli>(now - sent_at).count();
      LockGuard lock(mutex);
      ++report.completed;
      if (response.status < 200 || response.status >= 300) ++report.failed;
      if (sent_at >= measure_from && sent_at <= measure_to) {
        report.latencies_ms.add(latency_ms);
      }
      --in_flight;
      if (in_flight == 0 && !injecting) done_cv.notify_all();
    });
  }

  UniqueLock lock(mutex);
  injecting = false;
  // Drain: wait for stragglers (bounded so a wedged backend cannot hang us).
  done_cv.wait_for(lock, std::chrono::seconds(30),
                   [&] { return in_flight == 0; });
  return report;
}

}  // namespace pprox::workload
