// Real-time open-loop load injector (the node.js `loadtest` stand-in,
// paper §7.1): issues REST calls against an HttpChannel at a target rate,
// times each round trip, and aggregates candlestick statistics with
// warm-up/cool-down trimming (§8 "Metrics and workload").
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>

#include "common/stats.hpp"
#include "http/http.hpp"
#include "net/channel.hpp"

namespace pprox::workload {

struct InjectorConfig {
  double rps = 100;
  std::chrono::milliseconds duration{2'000};
  std::chrono::milliseconds warmup{250};    ///< samples trimmed at the front
  std::chrono::milliseconds cooldown{250};  ///< samples trimmed at the back
};

struct InjectionReport {
  SampleStats latencies_ms;  ///< trimmed window only
  std::size_t injected = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;    ///< non-2xx responses
};

/// Fires `make_request()` products at the channel on an open-loop schedule
/// (no waiting for responses) and blocks until the run drains.
InjectionReport run_injection(net::HttpChannel& channel,
                              const InjectorConfig& config,
                              const std::function<http::HttpRequest()>& make_request);

}  // namespace pprox::workload
