#include "workload/movielens.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace pprox::workload {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  cdf_.reserve(n);
  double total = 0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_.push_back(total);
  }
  for (double& v : cdf_) v /= total;
}

std::size_t ZipfSampler::sample(RandomSource& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

MovieLensGenerator::MovieLensGenerator(MovieLensParams params)
    : params_(params) {
  SplitMix64 rng(params_.seed);
  const ZipfSampler item_sampler(params_.items, params_.item_zipf_exponent);
  const ZipfSampler user_sampler(params_.users, params_.user_zipf_exponent);

  // Popularity ranks are scrambled so that "movie-0" is not always the hit:
  // ids carry no rank information, as in the real dataset.
  std::vector<std::size_t> item_permutation(params_.items);
  std::vector<std::size_t> user_permutation(params_.users);
  for (std::size_t i = 0; i < item_permutation.size(); ++i) item_permutation[i] = i;
  for (std::size_t i = 0; i < user_permutation.size(); ++i) user_permutation[i] = i;
  shuffle(item_permutation, rng);
  shuffle(user_permutation, rng);

  events_.reserve(params_.ratings);
  std::unordered_set<std::uint64_t> seen_pairs;
  std::unordered_set<std::size_t> users_seen;
  std::unordered_set<std::size_t> items_seen;
  seen_pairs.reserve(params_.ratings * 2);

  while (events_.size() < params_.ratings) {
    const std::size_t user = user_permutation[user_sampler.sample(rng)];
    const std::size_t item = item_permutation[item_sampler.sample(rng)];
    const std::uint64_t pair_key =
        (static_cast<std::uint64_t>(user) << 32) | item;
    // A user rates a movie once (as in MovieLens).
    // PPROX-CT-OK(branch): synthetic workload generator (benchmark input),
    // not production secret handling.
    if (!seen_pairs.insert(pair_key).second) continue;
    users_seen.insert(user);
    items_seen.insert(item);
    events_.push_back({user_id(user), item_id(item)});
  }
  distinct_users_ = users_seen.size();
  distinct_items_ = items_seen.size();
}

}  // namespace pprox::workload
