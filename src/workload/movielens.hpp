// Synthetic MovieLens-like workload (dataset substitution documented in
// DESIGN.md §2). The paper replays the 2014-15 slice of ml-20m: 562,888
// ratings, 17,141 movies, 7,288 users. We generate a rating stream with the
// same counts and the characteristic skews: Zipf-like item popularity and a
// heavy-tailed user-activity distribution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rand.hpp"
#include "lrs/cco.hpp"

namespace pprox::workload {

struct MovieLensParams {
  std::size_t users = 7'288;
  std::size_t items = 17'141;
  std::size_t ratings = 562'888;
  double item_zipf_exponent = 1.05;  ///< popularity skew
  double user_zipf_exponent = 0.85;  ///< activity skew
  std::uint64_t seed = 20'14;

  /// The full-size dataset, as in the paper's evaluation.
  static MovieLensParams paper_scale() { return {}; }

  /// Downscaled variant for unit tests and quick examples.
  static MovieLensParams small(std::uint64_t seed = 7) {
    MovieLensParams p;
    p.users = 200;
    p.items = 400;
    p.ratings = 5'000;
    p.seed = seed;
    return p;
  }
};

/// Deterministic synthetic rating stream.
class MovieLensGenerator {
 public:
  explicit MovieLensGenerator(MovieLensParams params);

  /// All feedback events (user, item), in injection order.
  std::vector<lrs::Event> events() const { return events_; }

  const MovieLensParams& params() const { return params_; }

  std::string user_id(std::size_t index) const {
    return "user-" + std::to_string(index);
  }
  std::string item_id(std::size_t index) const {
    return "movie-" + std::to_string(index);
  }

  /// Number of distinct users/items actually appearing in the stream.
  std::size_t distinct_users() const { return distinct_users_; }
  std::size_t distinct_items() const { return distinct_items_; }

 private:
  MovieLensParams params_;
  std::vector<lrs::Event> events_;
  std::size_t distinct_users_ = 0;
  std::size_t distinct_items_ = 0;
};

/// Zipf sampler over ranks [0, n): P(k) proportional to 1/(k+1)^s.
/// Uses an inverted-CDF table; construction is O(n), sampling O(log n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);
  std::size_t sample(RandomSource& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace pprox::workload
