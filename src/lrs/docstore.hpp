// In-memory document store — the MongoDB stand-in persisting engine data and
// pending inputs (feedback events) for the Harness-like LRS (paper §7).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "json/json.hpp"

namespace pprox::lrs {

/// One named collection of JSON documents keyed by string id.
/// Thread-safe: readers share, writers exclude.
class Collection {
 public:
  /// Inserts or replaces; returns the id (generated when empty).
  std::string upsert(std::string id, json::JsonValue doc);

  std::optional<json::JsonValue> find_by_id(const std::string& id) const;

  /// All documents whose string field `key` equals `value`.
  std::vector<json::JsonValue> find_by_field(const std::string& key,
                                             const std::string& value) const;

  /// Applies `fn` to every document (read-only snapshot semantics: the lock
  /// is held for the duration, so fn must not call back into the store).
  void scan(const std::function<void(const std::string&,
                                     const json::JsonValue&)>& fn) const;

  bool erase(const std::string& id);
  std::size_t size() const;
  void clear();

 private:
  mutable SharedMutex mutex_;
  std::map<std::string, json::JsonValue> docs_;
  std::uint64_t next_id_ = 1;
};

/// A set of named collections.
class DocumentStore {
 public:
  Collection& collection(const std::string& name);
  std::vector<std::string> collection_names() const;

 private:
  mutable SharedMutex mutex_;
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace pprox::lrs
