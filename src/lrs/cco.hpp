// Correlated Cross-Occurrence (CCO) model construction with log-likelihood
// ratio (LLR) indicator scoring — the algorithm behind ActionML's Universal
// Recommender that the paper integrates with (§7). The batch trainer is the
// Apache Spark stand-in: it consumes accumulated feedback events and emits
// per-item indicator lists for the search index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lrs/search_index.hpp"

namespace pprox::lrs {

/// One feedback event: user `u` interacted with item `i` (paper post(u,i)).
struct Event {
  std::string user;
  std::string item;
};

struct CcoParams {
  /// Keep at most this many indicators per item (UR default is 50).
  std::size_t max_indicators_per_item = 50;
  /// Indicators scoring below this LLR threshold are dropped.
  double llr_threshold = 0.0;
  /// Cap on events per user to bound the quadratic co-occurrence work
  /// (UR's maxEventsPerEventType downsampling).
  std::size_t max_events_per_user = 500;
};

/// Dunning's log-likelihood ratio for a 2x2 contingency table:
/// k11 = both, k12 = A only, k21 = B only, k22 = neither.
double log_likelihood_ratio(std::uint64_t k11, std::uint64_t k12,
                            std::uint64_t k21, std::uint64_t k22);

/// Batch CCO training: builds co-occurrence counts between items across user
/// histories and converts them to LLR-weighted indicators.
class CcoTrainer {
 public:
  explicit CcoTrainer(CcoParams params = {}) : params_(params) {}

  /// Produces a model (one IndexedItem per item) from the event log.
  std::vector<IndexedItem> train(const std::vector<Event>& events) const;

 private:
  CcoParams params_;
};

/// Query-side model: scores candidates for a user from their history using
/// the indicator index, excluding already-seen items.
class Recommender {
 public:
  explicit Recommender(const SearchIndex& index) : index_(&index) {}

  std::vector<ScoredHit> recommend(const std::vector<std::string>& user_history,
                                   std::size_t limit) const {
    return index_->query(user_history, user_history, limit);
  }

 private:
  const SearchIndex* index_;
};

}  // namespace pprox::lrs
