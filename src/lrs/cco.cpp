#include "lrs/cco.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace pprox::lrs {
namespace {

// Shannon entropy term used by the LLR computation: sum of k*ln(k) with the
// convention 0*ln(0) = 0.
double x_log_x(std::uint64_t x) {
  return x == 0 ? 0.0 : static_cast<double>(x) * std::log(static_cast<double>(x));
}

double entropy(std::initializer_list<std::uint64_t> ks) {
  std::uint64_t total = 0;
  double sum = 0;
  for (const std::uint64_t k : ks) {
    total += k;
    sum += x_log_x(k);
  }
  return x_log_x(total) - sum;
}

}  // namespace

double log_likelihood_ratio(std::uint64_t k11, std::uint64_t k12,
                            std::uint64_t k21, std::uint64_t k22) {
  const double row_entropy = entropy({k11 + k12, k21 + k22});
  const double col_entropy = entropy({k11 + k21, k12 + k22});
  const double mat_entropy = entropy({k11, k12, k21, k22});
  const double llr = 2.0 * (row_entropy + col_entropy - mat_entropy);
  return llr < 0 ? 0 : llr;  // clamp tiny negative rounding residue
}

std::vector<IndexedItem> CcoTrainer::train(const std::vector<Event>& events) const {
  // 1. Deduplicated user histories (a user liking an item twice counts once).
  std::unordered_map<std::string, std::unordered_set<std::string>> history;
  for (const Event& e : events) {
    auto& set = history[e.user];
    if (set.size() < params_.max_events_per_user) set.insert(e.item);
  }

  // 2. Per-item user counts and pairwise co-occurrence counts.
  std::unordered_map<std::string, std::uint64_t> item_users;
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::uint64_t>>
      cooccur;
  const std::uint64_t total_users = history.size();
  for (const auto& [user, items] : history) {
    (void)user;
    std::vector<std::string> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& item : sorted) ++item_users[item];
    for (std::size_t a = 0; a < sorted.size(); ++a) {
      for (std::size_t b = 0; b < sorted.size(); ++b) {
        if (a != b) ++cooccur[sorted[a]][sorted[b]];
      }
    }
  }

  // 3. LLR per (item, indicator) pair; keep the strongest indicators.
  std::vector<IndexedItem> model;
  model.reserve(item_users.size());
  for (const auto& [item, partners] : cooccur) {
    IndexedItem doc;
    doc.item_id = item;
    const std::uint64_t a_users = item_users[item];
    for (const auto& [other, both] : partners) {
      const std::uint64_t b_users = item_users[other];
      // LLR is two-sided; an indicator must be a *positive* association
      // (co-occurrence above the independence expectation), or items that
      // repel each other would score as highly as items that attract.
      if (both * total_users <= a_users * b_users) continue;
      const std::uint64_t k11 = both;
      const std::uint64_t k12 = a_users - both;
      const std::uint64_t k21 = b_users - both;
      const std::uint64_t k22 = total_users - a_users - b_users + both;
      const double llr = log_likelihood_ratio(k11, k12, k21, k22);
      if (llr > params_.llr_threshold) doc.indicators.emplace_back(other, llr);
    }
    std::sort(doc.indicators.begin(), doc.indicators.end(),
              [](const auto& x, const auto& y) {
                if (x.second != y.second) return x.second > y.second;
                return x.first < y.first;
              });
    if (doc.indicators.size() > params_.max_indicators_per_item) {
      // Truncate, but keep every indicator tied with the boundary score:
      // ids are an arbitrary tie-break, and cutting inside a tie group would
      // make the model depend on identifier *names* — under PProx the LRS
      // sees pseudonyms, and a name-dependent model would break the
      // recommendations-are-identical transparency property.
      const double boundary =
          doc.indicators[params_.max_indicators_per_item - 1].second;
      std::size_t end = params_.max_indicators_per_item;
      while (end < doc.indicators.size() &&
             doc.indicators[end].second == boundary) {
        ++end;
      }
      doc.indicators.resize(end);
    }
    model.push_back(std::move(doc));
  }
  // Items nobody co-liked still deserve an (indicator-less) document.
  for (const auto& [item, n] : item_users) {
    (void)n;
    if (cooccur.find(item) == cooccur.end()) {
      model.push_back(IndexedItem{item, {}});
    }
  }
  std::sort(model.begin(), model.end(),
            [](const IndexedItem& x, const IndexedItem& y) {
              return x.item_id < y.item_id;
            });
  return model;
}

}  // namespace pprox::lrs
