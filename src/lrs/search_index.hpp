// Inverted index with weighted-term scoring — the Elasticsearch stand-in
// that persists the Universal Recommender model (paper §7). Items are
// documents whose terms are their CCO indicators; a recommendation query is
// a weighted boolean "should" over the user's history.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"

namespace pprox::lrs {

/// One indexed document: an item and its indicator terms with LLR weights.
struct IndexedItem {
  std::string item_id;
  std::vector<std::pair<std::string, double>> indicators;
};

/// A scored query hit.
struct ScoredHit {
  std::string item_id;
  double score;
};

/// Immutable-snapshot inverted index: writers build a new generation and
/// swap it in atomically, so queries never block behind (re)training.
class SearchIndex {
 public:
  /// Replaces the whole index with a new model generation (bulk upload
  /// after a training run — how Harness deploys a new UR model).
  void replace_all(std::vector<IndexedItem> items);

  /// Scores all items matching at least one query term; a document's score
  /// is the sum of its matched indicator weights. `exclude` (the user's own
  /// history) is removed; top `limit` hits returned, score-descending with
  /// item-id tiebreak (deterministic).
  std::vector<ScoredHit> query(const std::vector<std::string>& terms,
                               const std::vector<std::string>& exclude,
                               std::size_t limit) const;

  std::size_t document_count() const;
  std::uint64_t generation() const;

 private:
  struct Posting {
    std::uint32_t item_index;
    double weight;
  };
  struct Snapshot {
    std::vector<std::string> item_ids;
    std::unordered_map<std::string, std::vector<Posting>> postings;
    std::uint64_t generation = 0;
  };

  std::shared_ptr<const Snapshot> snapshot() const;

  mutable Mutex swap_mutex_;
  std::shared_ptr<const Snapshot> current_ = std::make_shared<Snapshot>();
};

}  // namespace pprox::lrs
