// PPROX-LAYER: lrs
#include "lrs/harness.hpp"

#include <algorithm>

namespace pprox::lrs {

HarnessServer::HarnessServer(HarnessConfig config)
    : config_(config), trainer_(config.cco) {
  router_.add("POST", "/engines/ur/events",
              [this](const http::HttpRequest& r) { return handle_event(r); });
  router_.add("POST", "/engines/ur/queries",
              [this](const http::HttpRequest& r) { return handle_query(r); });
  router_.add("POST", "/engines/ur/train",
              [this](const http::HttpRequest& r) { return handle_train(r); });
  router_.add("GET", "/health", [](const http::HttpRequest&) {
    return http::HttpResponse::json_response(200, R"({"status":"green"})");
  });
}

void HarnessServer::handle(http::HttpRequest request, net::RespondFn done) {
  done(router_.dispatch(request));
}

http::HttpResponse HarnessServer::handle_event(const http::HttpRequest& request) {
  const auto doc = json::parse(request.body);
  if (!doc.ok() || !doc.value().is_object()) {
    return http::HttpResponse::error_response(400, "malformed event");
  }
  const std::string user = doc.value().get_string("user");
  const std::string item = doc.value().get_string("item");
  if (user.empty() || item.empty()) {
    return http::HttpResponse::error_response(400, "event needs user and item");
  }
  return post_event(user, item, doc.value().get_string("payload"));
}

http::HttpResponse HarnessServer::post_event(const std::string& user,
                                             const std::string& item,
                                             const std::string& payload) {
  json::JsonValue doc{json::JsonObject{}};
  doc.set("user", user);
  doc.set("item", item);
  if (!payload.empty()) doc.set("payload", payload);
  store_.collection("events").upsert("", std::move(doc));
  {
    WriteLock lock(history_mutex_);
    auto& h = history_[user];
    if (std::find(h.begin(), h.end(), item) == h.end()) h.push_back(item);
  }
  return http::HttpResponse::json_response(201, R"({"status":"accepted"})");
}

http::HttpResponse HarnessServer::post_event(const StoredPseudonym& user,
                                             const StoredPseudonym& item,
                                             const std::string& payload) {
  return post_event(user.wire(), item.wire(), payload);
}

http::HttpResponse HarnessServer::query(const StoredPseudonym& user) {
  return query(user.wire());
}

std::vector<std::pair<std::string, std::string>> HarnessServer::dump_events() const {
  std::vector<std::pair<std::string, std::string>> rows;
  store_.collection("events").scan(
      [&rows](const std::string&, const json::JsonValue& doc) {
        rows.emplace_back(doc.get_string("user"), doc.get_string("item"));
      });
  return rows;
}

std::vector<HarnessServer::EventRow> HarnessServer::dump_event_rows() const {
  std::vector<EventRow> rows;
  store_.collection("events").scan(
      [&rows](const std::string&, const json::JsonValue& doc) {
        rows.push_back({doc.get_string("user"), doc.get_string("item"),
                        doc.get_string("payload")});
      });
  return rows;
}

void HarnessServer::replace_all_events(const std::vector<EventRow>& rows) {
  store_.collection("events").clear();
  {
    WriteLock lock(history_mutex_);
    history_.clear();
  }
  for (const auto& row : rows) post_event(row.user, row.item, row.payload);
}

std::vector<std::string> HarnessServer::user_history(const std::string& user) const {
  ReadLock lock(history_mutex_);
  const auto it = history_.find(user);
  return it == history_.end() ? std::vector<std::string>{} : it->second;
}

http::HttpResponse HarnessServer::handle_query(const http::HttpRequest& request) {
  const auto doc = json::parse(request.body);
  if (!doc.ok() || !doc.value().is_object()) {
    return http::HttpResponse::error_response(400, "malformed query");
  }
  const std::string user = doc.value().get_string("user");
  if (user.empty()) {
    return http::HttpResponse::error_response(400, "query needs user");
  }
  return query(user);
}

std::vector<ScoredHit> HarnessServer::query_scored(const std::string& user,
                                                   std::size_t limit) const {
  const std::vector<std::string> history = user_history(user);
  return Recommender(index_).recommend(history, limit);
}

http::HttpResponse HarnessServer::query(const std::string& user) {
  const std::vector<std::string> history = user_history(user);
  const Recommender recommender(index_);
  const auto hits = recommender.recommend(history, config_.max_recommendations);

  json::JsonArray items;
  for (const auto& hit : hits) items.emplace_back(hit.item_id);
  json::JsonValue body{json::JsonObject{}};
  body.set("items", std::move(items));
  return http::HttpResponse::json_response(200, body.dump());
}

http::HttpResponse HarnessServer::handle_train(const http::HttpRequest&) {
  const std::size_t n = train();
  json::JsonValue body{json::JsonObject{}};
  body.set("items_indexed", static_cast<double>(n));
  return http::HttpResponse::json_response(200, body.dump());
}

std::size_t HarnessServer::train() {
  // Spark stand-in: batch job over all accumulated events.
  std::vector<Event> events;
  store_.collection("events").scan(
      [&events](const std::string&, const json::JsonValue& doc) {
        events.push_back({doc.get_string("user"), doc.get_string("item")});
      });
  auto model = trainer_.train(events);
  const std::size_t n = model.size();
  index_.replace_all(std::move(model));
  return n;
}

StubServer::StubServer(std::size_t list_size) {
  // Same shape and size class as a real recommendation list.
  json::JsonArray items;
  for (std::size_t i = 0; i < list_size; ++i) {
    items.emplace_back("stub-item-" + std::to_string(i));
  }
  json::JsonValue body{json::JsonObject{}};
  body.set("items", std::move(items));
  payload_ = body.dump();
}

void StubServer::handle(http::HttpRequest request, net::RespondFn done) {
  (void)request;
  done(http::HttpResponse::json_response(200, payload_));
}

}  // namespace pprox::lrs
