// PPROX-LAYER: lrs
//
// The Harness-like legacy recommendation system (LRS): REST front-end over
// the document store (MongoDB stand-in), search index (Elasticsearch
// stand-in) and CCO batch trainer (Spark stand-in). Matches the surface the
// paper integrates with (§7): insert feedback, train, query recommendations.
//
// The LRS is privacy-oblivious by design: it stores and serves whatever
// (possibly pseudonymized) identifiers it receives. In flow-lint terms it
// is the lowest layer of the lattice: an LRS translation unit may consume
// PseudonymDomain values only — referencing a user/item cleartext type or a
// declassifier here fails `pprox_lint --flow`, and handing a UserId to the
// typed entry points below fails to compile (tests/compile_fail/).
#pragma once

#include "common/sync.hpp"
#include <unordered_map>

#include "common/taint.hpp"
#include "http/http.hpp"
#include "lrs/cco.hpp"
#include "lrs/docstore.hpp"
#include "lrs/search_index.hpp"
#include "net/channel.hpp"

namespace pprox::lrs {

/// The only identifier type a privacy-preserving deployment hands to the
/// LRS: base64(det_enc(padded id, k_layer)). Releasable by construction —
/// reading it via wire() needs no declassification.
using StoredPseudonym =
    taint::Sensitive<std::string, taint::PseudonymDomain>;

struct HarnessConfig {
  std::size_t max_recommendations = 20;  ///< result list cap (paper §4.3)
  CcoParams cco;
};

/// REST API:
///   POST /engines/ur/events   {"user":u,"item":i[,"payload":p]} -> 201
///                             (payload = optional rating/weight string)
///   POST /engines/ur/queries  {"user":u}  -> 200 {"items":[...]}
///   POST /engines/ur/train    -> 200 {"items_indexed":n}
///   GET  /health              -> 200
class HarnessServer final : public net::RequestSink {
 public:
  explicit HarnessServer(HarnessConfig config = {});

  // RequestSink: synchronous handling (the LRS' own scaling is modelled in
  // the simulator; here correctness is what matters).
  void handle(http::HttpRequest request, net::RespondFn done) override;

  /// Direct API used by tests and the trainer examples. The untyped string
  /// overloads are the wire boundary (JSON bodies arrive as text); the
  /// StoredPseudonym overloads are the typed in-process entry points — a
  /// UserId/ItemId has no conversion to StoredPseudonym, so cleartext
  /// identifiers cannot reach the LRS without an audited declassification.
  http::HttpResponse post_event(const std::string& user, const std::string& item,
                                const std::string& payload = "");
  http::HttpResponse post_event(const StoredPseudonym& user,
                                const StoredPseudonym& item,
                                const std::string& payload = "");
  http::HttpResponse query(const std::string& user);
  http::HttpResponse query(const StoredPseudonym& user);
  std::size_t train();

  /// Scored query (diagnostic surface): lets callers distinguish genuinely
  /// different recommendations from reorderings among equal-scored items —
  /// the only divergence pseudonymization can introduce (ids are the
  /// tie-break key, and pseudonyms sort differently than plaintext ids).
  std::vector<ScoredHit> query_scored(const std::string& user,
                                      std::size_t limit) const;

  std::size_t event_count() const { return store_.collection("events").size(); }
  std::size_t indexed_items() const { return index_.document_count(); }

  /// User history as currently known (insertion-ordered, deduplicated).
  std::vector<std::string> user_history(const std::string& user) const;

  /// Raw (user, item) rows as persisted — what an adversary reading the
  /// database sees (paper §2.3 ➋). Order unspecified.
  std::vector<std::pair<std::string, std::string>> dump_events() const;

  /// Full event rows including payloads (operator surface, used by the
  /// breach-response re-encryption pass).
  struct EventRow {
    std::string user;
    std::string item;
    std::string payload;
  };
  std::vector<EventRow> dump_event_rows() const;

  /// Atomically replaces the whole event store (the re-upload step of the
  /// paper's footnote-1 "download, re-encrypt, re-upload" breach response).
  /// The search index is NOT touched: callers must retrain.
  void replace_all_events(const std::vector<EventRow>& rows);

 private:
  http::HttpResponse handle_event(const http::HttpRequest& request);
  http::HttpResponse handle_query(const http::HttpRequest& request);
  http::HttpResponse handle_train(const http::HttpRequest& request);

  HarnessConfig config_;
  mutable DocumentStore store_;
  SearchIndex index_;
  CcoTrainer trainer_;
  http::Router router_;

  mutable SharedMutex history_mutex_;
  std::unordered_map<std::string, std::vector<std::string>> history_;
};

/// The nginx stub used by the paper's micro-benchmarks (§7.1): returns a
/// static payload of the same shape/size as a Harness recommendation list.
class StubServer final : public net::RequestSink {
 public:
  explicit StubServer(std::size_t list_size = 20);

  void handle(http::HttpRequest request, net::RespondFn done) override;

  const std::string& payload() const { return payload_; }

 private:
  std::string payload_;
};

}  // namespace pprox::lrs
