#include "lrs/search_index.hpp"

#include <algorithm>
#include <unordered_set>

namespace pprox::lrs {

void SearchIndex::replace_all(std::vector<IndexedItem> items) {
  auto next = std::make_shared<Snapshot>();
  next->item_ids.reserve(items.size());
  for (auto& item : items) {
    const auto index = static_cast<std::uint32_t>(next->item_ids.size());
    next->item_ids.push_back(item.item_id);
    for (auto& [term, weight] : item.indicators) {
      next->postings[term].push_back({index, weight});
    }
  }
  LockGuard lock(swap_mutex_);
  next->generation = current_->generation + 1;
  current_ = std::move(next);
}

std::shared_ptr<const SearchIndex::Snapshot> SearchIndex::snapshot() const {
  // Brief critical section: copy the shared_ptr; queries then run lock-free
  // against the immutable snapshot.
  LockGuard lock(swap_mutex_);
  return current_;
}

std::vector<ScoredHit> SearchIndex::query(
    const std::vector<std::string>& terms,
    const std::vector<std::string>& exclude, std::size_t limit) const {
  const auto snap = snapshot();
  std::unordered_map<std::uint32_t, double> scores;
  for (const auto& term : terms) {
    const auto it = snap->postings.find(term);
    if (it == snap->postings.end()) continue;
    for (const Posting& p : it->second) scores[p.item_index] += p.weight;
  }
  const std::unordered_set<std::string> excluded(exclude.begin(), exclude.end());

  std::vector<ScoredHit> hits;
  hits.reserve(scores.size());
  for (const auto& [index, score] : scores) {
    const std::string& id = snap->item_ids[index];
    if (excluded.count(id) > 0) continue;
    hits.push_back({id, score});
  }
  std::sort(hits.begin(), hits.end(), [](const ScoredHit& a, const ScoredHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item_id < b.item_id;
  });
  if (hits.size() > limit) hits.resize(limit);
  return hits;
}

std::size_t SearchIndex::document_count() const {
  return snapshot()->item_ids.size();
}

std::uint64_t SearchIndex::generation() const {
  return snapshot()->generation;
}

}  // namespace pprox::lrs
