#include "lrs/scheduler.hpp"

namespace pprox::lrs {

TrainingScheduler::TrainingScheduler(HarnessServer& server, TrainingPolicy policy)
    : server_(&server), policy_(policy) {
  thread_ = DetThread([this] { loop(); }, "training");
}

TrainingScheduler::~TrainingScheduler() { stop(); }

void TrainingScheduler::stop() {
  {
    LockGuard lock(mutex_);
    if (stopping_.exchange(true)) return;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  run_done_cv_.notify_all();
}

void TrainingScheduler::trigger() {
  LockGuard lock(mutex_);
  trigger_requested_ = true;
  cv_.notify_all();
}

void TrainingScheduler::wait_for_next_run() {
  const std::uint64_t seen = runs_.load();
  UniqueLock lock(mutex_);
  run_done_cv_.wait(lock, [this, seen] {
    return stopping_.load() || runs_.load() > seen;
  });
}

void TrainingScheduler::loop() {
  using Clock = SteadyClock;
  constexpr std::chrono::milliseconds kPollSlice{20};
  UniqueLock lock(mutex_);
  auto deadline = Clock::now() + policy_.interval;
  while (!stopping_.load()) {
    // Short waits so the event-count trigger reacts promptly: new events do
    // not notify this thread, they are observed by polling.
    cv_.wait_for(lock, kPollSlice,
                 [this] { return stopping_.load() || trigger_requested_; });
    if (stopping_.load()) return;
    const bool by_count =
        policy_.min_new_events > 0 &&
        server_->event_count() >= events_at_last_run_ + policy_.min_new_events;
    const bool by_time = Clock::now() >= deadline;
    if (!trigger_requested_ && !by_count && !by_time) continue;

    trigger_requested_ = false;
    const std::size_t events_now = server_->event_count();
    {
      ScopedUnlock unlocked(lock);
      server_->train();  // batch job; queries keep hitting the old snapshot
    }
    events_at_last_run_ = events_now;
    deadline = Clock::now() + policy_.interval;
    runs_.fetch_add(1);
    run_done_cv_.notify_all();
  }
}

}  // namespace pprox::lrs
