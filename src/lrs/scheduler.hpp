// Periodic model-rebuild scheduler — the "periodic runs of Apache Spark for
// rebuilding this model including new inputs fetched from MongoDB" of the
// paper's Harness deployment (§7). Runs the CCO batch job on a background
// thread at a fixed cadence, or on demand when enough new feedback arrived.
#pragma once

#include <chrono>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "lrs/harness.hpp"

namespace pprox::lrs {

struct TrainingPolicy {
  std::chrono::milliseconds interval{60'000};  ///< rebuild cadence
  /// Also rebuild early once this many events arrived since the last run
  /// (0 disables the event-count trigger).
  std::size_t min_new_events = 0;
};

/// Owns a background thread that retrains `server` per the policy. The
/// scheduler never blocks queries: training swaps a fresh index generation
/// in atomically (SearchIndex snapshot semantics).
class TrainingScheduler {
 public:
  TrainingScheduler(HarnessServer& server, TrainingPolicy policy);
  ~TrainingScheduler();

  TrainingScheduler(const TrainingScheduler&) = delete;
  TrainingScheduler& operator=(const TrainingScheduler&) = delete;

  /// Requests an immediate rebuild (returns once it is scheduled, not done).
  void trigger() PPROX_EXCLUDES(mutex_);

  /// Blocks until at least one training run has completed since the call.
  void wait_for_next_run() PPROX_EXCLUDES(mutex_);

  std::uint64_t runs_completed() const { return runs_.load(); }

  void stop() PPROX_EXCLUDES(mutex_);

 private:
  void loop() PPROX_EXCLUDES(mutex_);

  HarnessServer* server_;
  TrainingPolicy policy_;
  Atomic<bool> stopping_{false};
  Atomic<std::uint64_t> runs_{0};
  std::size_t events_at_last_run_ PPROX_GUARDED_BY(mutex_) = 0;

  Mutex mutex_;
  CondVar cv_;
  CondVar run_done_cv_;
  bool trigger_requested_ PPROX_GUARDED_BY(mutex_) = false;
  DetThread thread_;
};

}  // namespace pprox::lrs
