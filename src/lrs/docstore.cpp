#include "lrs/docstore.hpp"

namespace pprox::lrs {

std::string Collection::upsert(std::string id, json::JsonValue doc) {
  WriteLock lock(mutex_);
  if (id.empty()) id = "doc-" + std::to_string(next_id_++);
  docs_[id] = std::move(doc);
  return id;
}

std::optional<json::JsonValue> Collection::find_by_id(const std::string& id) const {
  ReadLock lock(mutex_);
  const auto it = docs_.find(id);
  if (it == docs_.end()) return std::nullopt;
  return it->second;
}

std::vector<json::JsonValue> Collection::find_by_field(
    const std::string& key, const std::string& value) const {
  ReadLock lock(mutex_);
  std::vector<json::JsonValue> out;
  for (const auto& [id, doc] : docs_) {
    const json::JsonValue* field = doc.find(key);
    if (field != nullptr && field->is_string() && field->as_string() == value) {
      out.push_back(doc);
    }
  }
  return out;
}

void Collection::scan(const std::function<void(const std::string&,
                                               const json::JsonValue&)>& fn) const {
  ReadLock lock(mutex_);
  for (const auto& [id, doc] : docs_) fn(id, doc);
}

bool Collection::erase(const std::string& id) {
  WriteLock lock(mutex_);
  return docs_.erase(id) > 0;
}

std::size_t Collection::size() const {
  ReadLock lock(mutex_);
  return docs_.size();
}

void Collection::clear() {
  WriteLock lock(mutex_);
  docs_.clear();
}

Collection& DocumentStore::collection(const std::string& name) {
  {
    ReadLock lock(mutex_);
    const auto it = collections_.find(name);
    if (it != collections_.end()) return *it->second;
  }
  WriteLock lock(mutex_);
  auto& slot = collections_[name];
  if (!slot) slot = std::make_unique<Collection>();
  return *slot;
}

std::vector<std::string> DocumentStore::collection_names() const {
  ReadLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, c] : collections_) names.push_back(name);
  return names;
}

}  // namespace pprox::lrs
